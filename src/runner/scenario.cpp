#include "runner/scenario.hpp"

#include <algorithm>

namespace continu::runner {

core::SystemConfig Scenario::make_config(std::uint64_t seed) const {
  core::SystemConfig config;
  config.seed = seed;
  config.scheduler = scheduler;
  config.expected_nodes = static_cast<double>(node_count);
  config.backup_replicas = backup_replicas;
  config.prefetch_limit = prefetch_limit;
  config.connected_neighbors = connected_neighbors;
  config.heterogeneous_bandwidth = heterogeneous_bandwidth;
  config.playback_rate = playback_rate;
  config.latency_grid_ms = latency_grid_ms;
  if (churn) {
    config.churn_enabled = true;
    config.churn.leave_fraction = churn_fraction;
    config.churn.join_fraction = churn_fraction;
    config.churn.graceful_fraction = graceful_fraction;
  }
  return config;
}

Scenario Scenario::with(const ScenarioOverrides& o, std::string derived_name) const {
  Scenario s = *this;
  s.name = std::move(derived_name);
  if (o.node_count) s.node_count = *o.node_count;
  if (o.churn) s.churn = *o.churn;
  if (o.churn_fraction) {
    s.churn_fraction = *o.churn_fraction;
    s.churn = *o.churn_fraction > 0.0;  // rate implies the toggle
  }
  if (o.graceful_fraction) s.graceful_fraction = *o.graceful_fraction;
  if (o.playback_rate) s.playback_rate = *o.playback_rate;
  if (o.connected_neighbors) s.connected_neighbors = *o.connected_neighbors;
  if (o.backup_replicas) s.backup_replicas = *o.backup_replicas;
  if (o.prefetch_limit) s.prefetch_limit = *o.prefetch_limit;
  if (o.scheduler) s.scheduler = *o.scheduler;
  if (o.latency_grid_ms) s.latency_grid_ms = *o.latency_grid_ms;
  if (o.trace_seed) s.trace_seed = *o.trace_seed;
  if (o.duration) s.duration = *o.duration;
  if (o.stable_from) s.stable_from = *o.stable_from;
  return s;
}

trace::GeneratorConfig Scenario::make_trace() const {
  trace::GeneratorConfig tc;
  tc.node_count = node_count;
  tc.average_degree = average_degree;
  tc.seed = trace_seed;
  return tc;
}

namespace {

[[nodiscard]] std::vector<Scenario> build_matrix() {
  std::vector<Scenario> m;

  auto add = [&m](Scenario s) { m.push_back(std::move(s)); };

  // --- headline environments (figures 5-8) -------------------------------
  {
    Scenario s;
    s.name = "static_small";
    s.description = "200 nodes, static, ContinuStreaming (smoke-scale fig5)";
    s.node_count = 200;
    s.trace_seed = 21;
    add(s);
  }
  {
    Scenario s;
    s.name = "static_1k";
    s.description = "1000 nodes, static, ContinuStreaming (fig5 environment)";
    s.node_count = 1000;
    s.trace_seed = 55;
    add(s);
  }
  {
    Scenario s;
    s.name = "dynamic_1k";
    s.description = "1000 nodes, 5% churn per period (fig6 environment)";
    s.node_count = 1000;
    s.trace_seed = 56;
    s.churn = true;
    add(s);
  }
  {
    Scenario s;
    s.name = "static_4k";
    s.description = "4000 nodes, static (fig7 upper range)";
    s.node_count = 4000;
    s.trace_seed = 4300;
    add(s);
  }
  {
    Scenario s;
    s.name = "dynamic_abrupt";
    s.description = "500 nodes, 5% churn, all departures abrupt (worst case)";
    s.node_count = 500;
    s.trace_seed = 700;
    s.churn = true;
    s.graceful_fraction = 0.0;
    add(s);
  }

  {
    Scenario s;
    s.name = "static_8k";
    s.description = "8000 nodes, static (engine-scaling workload, fig7 extension)";
    s.node_count = 8000;
    s.trace_seed = 8700;
    add(s);
  }
  {
    Scenario s;
    s.name = "static_100k";
    s.description =
        "100000 nodes, static (production-scale milestone; memory-budget "
        "workload — expect minutes of wall clock per run)";
    s.node_count = 100000;
    s.trace_seed = 100700;
    add(s);
  }

  // --- baselines on the same substrate ------------------------------------
  {
    Scenario s;
    s.name = "cool_static_1k";
    s.description = "1000 nodes, static, CoolStreaming baseline";
    s.node_count = 1000;
    s.trace_seed = 55;
    s.scheduler = core::SchedulerKind::kCoolStreaming;
    add(s);
  }
  {
    Scenario s;
    s.name = "cool_dynamic_1k";
    s.description = "1000 nodes, 5% churn, CoolStreaming baseline";
    s.node_count = 1000;
    s.trace_seed = 56;
    s.churn = true;
    s.scheduler = core::SchedulerKind::kCoolStreaming;
    add(s);
  }
  {
    Scenario s;
    s.name = "gridmedia_static_1k";
    s.description = "1000 nodes, static, GridMedia push-pull baseline";
    s.node_count = 1000;
    s.trace_seed = 55;
    s.scheduler = core::SchedulerKind::kGridMediaPushPull;
    add(s);
  }

  // --- DHT / pre-fetch ablation points ("alpha settings") ------------------
  {
    Scenario s;
    s.name = "no_prefetch";
    s.description = "500 nodes, static, prefetch disabled (l = 0): gossip-only";
    s.node_count = 500;
    s.trace_seed = 700;
    s.prefetch_limit = 0;
    add(s);
  }
  {
    Scenario s;
    s.name = "heavy_prefetch";
    s.description = "500 nodes, static, aggressive prefetch (l = 10, k = 6)";
    s.node_count = 500;
    s.trace_seed = 700;
    s.prefetch_limit = 10;
    s.backup_replicas = 6;
    add(s);
  }
  {
    Scenario s;
    s.name = "thin_replicas";
    s.description = "500 nodes, 5% churn, single backup replica (k = 1)";
    s.node_count = 500;
    s.trace_seed = 700;
    s.churn = true;
    s.backup_replicas = 1;
    add(s);
  }

  return m;
}

/// The fig7/8/9/11 sweep grids as named family members, derived from a
/// neutral base via ScenarioOverrides. Trace seeds reproduce the grids
/// the benches used to build inline (300/400/500/600 + n [+ m]), so
/// folding the benches onto the families changed no workload.
[[nodiscard]] std::vector<Scenario> build_families() {
  std::vector<Scenario> families;
  Scenario base;  // paper-standard defaults

  const std::vector<std::size_t> sizes = {100, 500, 1000, 2000, 4000, 8000};

  base.description = "fig7 family: static continuity vs overlay size";
  for (const std::size_t n : sizes) {
    ScenarioOverrides o;
    o.node_count = n;
    o.trace_seed = 300 + n;
    families.push_back(base.with(o, "fig7_static_" + std::to_string(n)));
  }

  base.description = "fig8 family: dynamic continuity vs overlay size (5% churn)";
  for (const std::size_t n : sizes) {
    ScenarioOverrides o;
    o.node_count = n;
    o.churn = true;
    o.trace_seed = 400 + n;
    families.push_back(base.with(o, "fig8_dynamic_" + std::to_string(n)));
  }

  base.description = "fig9 family: control overhead vs overlay size, M in {4,5,6}";
  for (const std::size_t n : {std::size_t{100}, std::size_t{500}, std::size_t{1000},
                              std::size_t{2000}, std::size_t{4000}}) {
    for (const std::size_t m : {std::size_t{4}, std::size_t{5}, std::size_t{6}}) {
      ScenarioOverrides o;
      o.node_count = n;
      o.connected_neighbors = m;
      o.trace_seed = 500 + n + m;
      families.push_back(base.with(
          o, "fig9_m" + std::to_string(m) + "_" + std::to_string(n)));
    }
  }

  base.description = "fig11 family: pre-fetch overhead vs overlay size";
  for (const std::size_t n : sizes) {
    ScenarioOverrides o;
    o.node_count = n;
    o.trace_seed = 600 + n;
    families.push_back(base.with(o, "fig11_static_" + std::to_string(n)));
    o.churn = true;
    families.push_back(base.with(o, "fig11_dynamic_" + std::to_string(n)));
  }

  // --- quantized-network family -------------------------------------------
  // Matrix bases re-run under the quantized latency mode at 1/2/5 ms
  // grids: "q1_static_1k" is static_1k — same trace, same seeds — with
  // deliveries snapped to a 1 ms grid and dispatched as receiver-sharded
  // batches. The continuous/quantized pairs are what the committed
  // divergence study (bench_quantized_divergence) sweeps.
  {
    const std::vector<Scenario> matrix = build_matrix();
    const auto matrix_base = [&matrix](const std::string& name) {
      return *std::find_if(matrix.begin(), matrix.end(),
                           [&name](const Scenario& s) { return s.name == name; });
    };
    for (const double grid : {1.0, 2.0, 5.0}) {
      const std::string prefix = "q" + std::to_string(static_cast<int>(grid)) + "_";
      for (const char* name :
           {"static_small", "static_1k", "dynamic_1k", "static_8k", "thin_replicas"}) {
        Scenario b = matrix_base(name);
        ScenarioOverrides o;
        o.latency_grid_ms = grid;
        Scenario s = b.with(o, prefix + b.name);
        s.description = b.description + " [quantized " +
                        std::to_string(static_cast<int>(grid)) + " ms latency grid]";
        families.push_back(std::move(s));
      }
    }
  }

  return families;
}

}  // namespace

const std::vector<Scenario>& scenario_matrix() {
  static const std::vector<Scenario> matrix = build_matrix();
  return matrix;
}

const std::vector<Scenario>& scenario_families() {
  static const std::vector<Scenario> families = build_families();
  return families;
}

std::optional<Scenario> find_scenario(const std::string& name) {
  const auto by_name = [&name](const Scenario& s) { return s.name == name; };
  const auto& m = scenario_matrix();
  const auto it = std::find_if(m.begin(), m.end(), by_name);
  if (it != m.end()) return *it;
  const auto& f = scenario_families();
  const auto fit = std::find_if(f.begin(), f.end(), by_name);
  if (fit != f.end()) return *fit;
  return std::nullopt;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(scenario_matrix().size());
  for (const auto& s : scenario_matrix()) names.push_back(s.name);
  return names;
}

std::vector<std::string> all_scenario_names() {
  std::vector<std::string> names = scenario_names();
  names.reserve(names.size() + scenario_families().size());
  for (const auto& s : scenario_families()) names.push_back(s.name);
  return names;
}

}  // namespace continu::runner
