#include "runner/cli.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "runner/scenario.hpp"

namespace continu::runner::cli {

std::optional<std::uint64_t> parse_uint(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  // strtoull accepts leading whitespace, signs and trailing garbage;
  // a flag value must be digits only.
  for (const char* p = text; *p != '\0'; ++p) {
    if (std::isdigit(static_cast<unsigned char>(*p)) == 0) return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

std::optional<std::uint64_t> parse_positive(const char* text) {
  const auto value = parse_uint(text);
  if (!value.has_value() || *value == 0) return std::nullopt;
  return value;
}

std::optional<unsigned> parse_positive_u32(const char* text) {
  const auto value = parse_positive(text);
  if (!value.has_value() || *value > std::numeric_limits<unsigned>::max()) {
    return std::nullopt;
  }
  return static_cast<unsigned>(*value);
}

std::string unknown_scenario_message(const std::string& name) {
  std::string message = "unknown scenario '" + name + "'; valid names:";
  for (const auto& valid : all_scenario_names()) {
    message += "\n  " + valid;
  }
  return message;
}

}  // namespace continu::runner::cli
