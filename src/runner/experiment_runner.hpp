#pragma once
// ExperimentRunner — shards independent Session replications across a
// std::thread pool so a 50-replication Monte-Carlo sweep uses every
// core instead of one.
//
// Design constraints (and why):
//   * Replications are embarrassingly parallel: one Session owns its
//     simulator, network, nodes and RNG, so threads share nothing but
//     the spec list and their private result slots.
//   * Work assignment is a STATIC STRIDED QUEUE — worker w runs specs
//     w, w + J, w + 2J, ... No mutex, no work stealing, and (more
//     importantly) no scheduling nondeterminism: results land in spec
//     order and are bit-identical for any jobs count, which the
//     determinism tests enforce.
//   * Per-replication RNG seeding is derived, not sequential:
//     replication_seed() splitmix-es (base, index) so neighboring
//     replications get decorrelated streams and a replication's seed
//     never depends on how many jobs ran it.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/session.hpp"
#include "metrics/collector.hpp"
#include "metrics/continuity.hpp"
#include "runner/scenario.hpp"
#include "trace/generator.hpp"
#include "util/stats.hpp"

namespace continu::runner {

/// One independent replication: seed x SystemConfig x trace scenario.
struct ReplicationSpec {
  std::string label;              ///< carried into the result for grouping
  core::SystemConfig config;      ///< includes the simulation seed
  trace::GeneratorConfig trace;   ///< deterministic snapshot recipe
  /// Pre-built snapshot (corpus benches, trace files). When set it is
  /// used instead of the recipe; workers only read it, so sharing one
  /// snapshot across specs is safe.
  std::shared_ptr<const trace::TraceSnapshot> snapshot;
  double duration = 45.0;
  double stable_from = 20.0;
};

/// Everything a bench or test wants back from one replication. The
/// session itself is destroyed inside the worker; tracks are copied out
/// so figure benches can still plot per-round series.
struct ReplicationResult {
  std::string label;
  std::uint64_t seed = 0;

  double stable_continuity = 0.0;
  double stabilization_time = -1.0;
  double continuity_index = 0.0;
  double control_overhead = 0.0;
  double prefetch_overhead = 0.0;
  std::size_t alive_at_end = 0;

  core::SessionStats stats;
  metrics::ContinuityTracker continuity;  ///< per-round ratio track
  metrics::SeriesCollector collector;     ///< all named series
  /// Observability snapshot (profiler totals, drained trace, settled
  /// counters); null unless the spec's config.obs enabled a pillar.
  /// shared_ptr: results are copied during aggregation and a report can
  /// be megabytes of trace events.
  std::shared_ptr<const obs::ObsReport> obs;
};

/// Merged view over many replications: mean/stddev of the headline
/// metrics plus element-wise SessionStats sums.
struct ExperimentResult {
  std::size_t replications = 0;
  util::RunningStats continuity;          ///< stable-phase playback continuity
  util::RunningStats continuity_index;
  util::RunningStats stabilization_time;  ///< only runs that stabilized
  util::RunningStats control_overhead;
  util::RunningStats prefetch_overhead;
  core::SessionStats total;               ///< summed across replications
  std::vector<ReplicationResult> runs;    ///< spec order, jobs-invariant
};

/// Derived seed for replication `index` of a base seed. Pure function of
/// (base, index): stable across jobs counts, platforms and reruns.
[[nodiscard]] std::uint64_t replication_seed(std::uint64_t base, std::size_t index);

/// Knobs for replicate(). Defaults reproduce the classic behaviour
/// bit-for-bit: only the simulation seed varies per replication.
struct ReplicateOptions {
  /// Also derive a fresh trace seed per replication, so each one runs
  /// on its own topology (topology-robustness sweeps). Incompatible
  /// with a pre-built base.snapshot, which would silently pin the
  /// topology — replicate() throws on that combination.
  bool vary_trace_seed = false;
};

/// `count` copies of `base` with config.seed = replication_seed(base.config.seed, i)
/// and labels suffixed "#i". With options.vary_trace_seed, trace.seed is
/// likewise replication_seed(base.trace.seed, i).
[[nodiscard]] std::vector<ReplicationSpec> replicate(const ReplicationSpec& base,
                                                     std::size_t count,
                                                     ReplicateOptions options = {});

/// Spec for one named scenario at one seed (trace comes from the scenario).
[[nodiscard]] ReplicationSpec spec_for(const Scenario& scenario, std::uint64_t seed);

class ExperimentRunner {
 public:
  /// jobs = 0 picks std::thread::hardware_concurrency() (min 1).
  ///
  /// `session_threads` is the intra-session fork/join width (see
  /// SystemConfig::threads): 0 leaves each spec's own config.threads
  /// untouched; > 0 overrides every spec. With session_threads > 1 the
  /// runner ARBITRATES the core budget between the two parallelism
  /// layers: jobs is clamped so jobs x session_threads stays within
  /// hardware_concurrency (the intra-session width wins — the caller
  /// dialed it explicitly), and jobs = 0 resolves to the largest count
  /// that fits. Results never depend on either knob.
  explicit ExperimentRunner(unsigned jobs = 0, unsigned session_threads = 0);

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }
  [[nodiscard]] unsigned session_threads() const noexcept { return session_threads_; }

  /// Runs every spec, sharded across the pool; results in spec order.
  /// Identical output for any jobs value. First worker exception is
  /// rethrown on the calling thread after the pool joins.
  [[nodiscard]] std::vector<ReplicationResult> run_all(
      const std::vector<ReplicationSpec>& specs) const;

  /// run_all + aggregate in one call.
  [[nodiscard]] ExperimentResult run_experiment(
      const std::vector<ReplicationSpec>& specs) const;

  /// Executes one spec on the calling thread (the worker body).
  [[nodiscard]] static ReplicationResult run_one(const ReplicationSpec& spec);

  /// Folds replication results into the merged experiment view.
  [[nodiscard]] static ExperimentResult aggregate(std::vector<ReplicationResult> runs);

 private:
  unsigned jobs_ = 1;
  unsigned session_threads_ = 0;
};

/// FNV-1a fingerprint over a replication's full observable output:
/// every SessionStats counter, the continuity track and every collector
/// series, by raw bit pattern. Two runs are engine-bit-identical iff
/// their fingerprints (and stats) match — the oracle behind the
/// threads/jobs-invariance checks in tools, benches and tests.
[[nodiscard]] std::uint64_t result_fingerprint(const ReplicationResult& run);

}  // namespace continu::runner
