#pragma once
// Shared command-line validation for the tools (continu_sim,
// scenario_fingerprint, benches): strict numeric parsing and scenario
// name diagnostics, factored out so unit tests can cover the exact
// rejection rules the binaries apply.

#include <cstdint>
#include <optional>
#include <string>

namespace continu::runner::cli {

/// Parses a STRICTLY POSITIVE integer. Returns std::nullopt for
/// anything else: empty input, trailing garbage ("4x"), signs ("-1",
/// "+2"), zero, or values beyond 64 bits. The tools use this for
/// --jobs / --threads / --replications, which must be >= 1.
[[nodiscard]] std::optional<std::uint64_t> parse_positive(const char* text);

/// Like parse_positive but also capped (flag values that feed unsigned
/// knobs). Returns std::nullopt when out of (0, max].
[[nodiscard]] std::optional<unsigned> parse_positive_u32(const char* text);

/// Strict NON-NEGATIVE integer (digits only; zero allowed). For flag
/// values where 0 is legitimate, e.g. seeds.
[[nodiscard]] std::optional<std::uint64_t> parse_uint(const char* text);

/// Diagnostic for an unknown --scenario value: names the offender and
/// lists every valid scenario (matrix and families), so the fix is in
/// the error message.
[[nodiscard]] std::string unknown_scenario_message(const std::string& name);

}  // namespace continu::runner::cli
