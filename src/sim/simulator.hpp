#pragma once
// Deterministic discrete-event simulator: virtual clock + event queue.
//
// Everything in the reproduction — buffer-map exchanges, segment
// transfers, DHT routing hops, churn, playback ticks — executes as
// events on one Simulator instance, so a (seed, config) pair fully
// determines a run.

#include <functional>

#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace continu::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in seconds.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` to run at now() + delay (delay clamped to >= 0).
  /// Returns a handle usable with cancel().
  EventId schedule_in(SimTime delay, std::function<void()> action);

  /// Schedules `action` at an absolute time (clamped to >= now()).
  EventId schedule_at(SimTime when, std::function<void()> action);

  /// Cancels a pending event; returns true iff it was still pending.
  bool cancel(EventId id);

  /// Runs events until the queue drains or the clock passes `horizon`.
  /// Events at exactly `horizon` still run. Returns events executed.
  std::size_t run_until(SimTime horizon);

  /// Runs until the queue is empty. Returns events executed.
  std::size_t run_all();

  /// Executes exactly one event if available; returns whether one ran.
  bool step();

  /// Live events still pending.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
};

/// Repeating event helper: reschedules itself every `period` until
/// stop() or the owning simulator drains. Used for scheduling rounds,
/// churn ticks and metric sampling.
class PeriodicProcess {
 public:
  PeriodicProcess(Simulator& sim, SimTime period, std::function<void()> tick);
  ~PeriodicProcess();
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Starts with the first tick after `initial_delay`.
  void start(SimTime initial_delay = 0.0);

  /// Cancels the pending tick; further ticks stop.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] SimTime period() const noexcept { return period_; }

 private:
  void arm(SimTime delay);

  Simulator& sim_;
  SimTime period_;
  std::function<void()> tick_;
  EventId pending_event_ = kInvalidEvent;
  bool running_ = false;
};

}  // namespace continu::sim
