#pragma once
// Deterministic discrete-event simulator: virtual clock + event queue.
//
// Everything in the reproduction — buffer-map exchanges, segment
// transfers, DHT routing hops, churn, playback ticks — executes as
// events on one Simulator instance, so a (seed, config) pair fully
// determines a run.
//
// Scheduling is allocation-free for ordinary captures: actions are
// EventActions (small-buffer optimized) stored directly in the queue's
// slot pool, and cancel() is an O(1) slot write.
//
// Two queue engines, chosen at construction:
//
//   single (default) — one EventQueue, the oracle every other engine
//   is measured against.
//
//   sharded (queue_shards > 0) — a ShardedEventQueue of per-shard
//   heaps under a meta-heap frontier, plus an optional frontier hook
//   through which the network's quantized delivery lanes interleave
//   barrier dispatches with ordinary events in global (time, seq)
//   order. Execution order — and therefore every fingerprint — is
//   byte-identical to the single engine by construction.

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/sharded_queue.hpp"
#include "util/types.hpp"

namespace continu::sim {

namespace parallel {
class ParallelExecutor;
}

class Simulator {
 public:
  Simulator() = default;
  /// queue_shards > 0 selects the sharded engine with that many
  /// per-shard heaps (rounded up to a power of two); 0 is the single
  /// queue.
  explicit Simulator(unsigned queue_shards) {
    if (queue_shards > 0) {
      squeue_ = std::make_unique<ShardedEventQueue>(queue_shards);
    }
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in seconds.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// True when running on the sharded queue engine.
  [[nodiscard]] bool sharded() const noexcept { return squeue_ != nullptr; }

  /// Shard count of the sharded engine (0 on the single queue).
  [[nodiscard]] unsigned queue_shards() const noexcept {
    return squeue_ ? squeue_->shard_count() : 0;
  }

  /// The sharded queue itself, for frontier diagnostics (null on the
  /// single engine).
  [[nodiscard]] const ShardedEventQueue* sharded_queue() const noexcept {
    return squeue_.get();
  }

  /// Draws a sequence number from the sharded engine's global stream
  /// (delivery lanes rank their hand-offs with these). Requires
  /// sharded().
  [[nodiscard]] std::uint64_t allocate_seq() {
    if (!squeue_) {
      throw std::logic_error("Simulator::allocate_seq: single-queue engine");
    }
    return squeue_->allocate_seq();
  }

  /// External event source draining at frontier barriers (the
  /// network's quantized delivery lanes). next_key reports the
  /// earliest pending (time, seq) hand-off; dispatch drains EVERY
  /// hand-off at that instant. The run loop interleaves dispatches
  /// with ordinary events in global (time, seq) order, which is
  /// exactly where the single-queue engine's bucket proxy event would
  /// have fired.
  struct FrontierHook {
    std::function<bool(SimTime& time, std::uint64_t& seq)> next_key;
    std::function<void(SimTime time)> dispatch;
    /// Lax mode only: drains EVERY pending hand-off instant <= limit in
    /// one windowed sweep (per-lane pops forked once for the whole
    /// window instead of once per barrier). The hook calls
    /// begin_instant(t) before dispatching each instant's batch so the
    /// simulator can stamp its clock and executed count; returns the
    /// number of instants dispatched. Unset = the lax drain falls back
    /// to per-instant dispatch().
    std::function<std::size_t(SimTime limit,
                              const std::function<void(SimTime)>& begin_instant)>
        dispatch_window;
  };

  /// Installs the frontier hook (sharded engine only; the single
  /// engine schedules proxy events instead and never calls this).
  void set_frontier_hook(FrontierHook hook) {
    if (!squeue_) {
      throw std::logic_error("Simulator::set_frontier_hook: single-queue engine");
    }
    frontier_ = std::move(hook);
  }

  /// Lax-drain configuration (sharded engine + positive grid only).
  /// The run loop drains bounded-skew windows of width
  /// `skew_buckets * grid_s` instead of walking the strict frontier:
  /// per-shard pops fork on `exec` (inline with the identical shard
  /// decomposition when null), execution is serial in shard-index
  /// order at per-event local clocks. `on_fork(shards)` fires before
  /// each collection fork (the session brackets it as
  /// obs::Phase::kLaxDrain).
  struct LaxConfig {
    unsigned skew_buckets = 0;
    SimTime grid_s = 0.0;
    parallel::ParallelExecutor* exec = nullptr;
    std::function<void(std::size_t shards)> on_fork;
  };

  /// Switches the sharded engine's run loop to lax windows. Requires
  /// sharded(), skew_buckets >= 1 and grid_s > 0 — callers gate on the
  /// config, so a violation is a logic error, not a silent fallback.
  void set_lax_drain(LaxConfig lax);

  /// True when the run loop drains lax windows instead of the strict
  /// frontier.
  [[nodiscard]] bool lax() const noexcept { return lax_.skew_buckets > 0; }

  /// Schedules `action` to run at now() + delay (delay clamped to >= 0).
  /// Returns a handle usable with cancel(). Accepts any callable;
  /// captures up to EventAction::kInlineCapacity bytes never allocate
  /// (the callable is constructed directly in the queue's slot pool).
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventAction>>>
  EventId schedule_in(SimTime delay, F&& f) {
    validate_callable(f);
    if (delay < 0.0) delay = 0.0;
    if (squeue_) return squeue_->emplace(now_ + delay, std::forward<F>(f));
    return queue_.emplace(now_ + delay, std::forward<F>(f));
  }

  /// Schedules `action` at an absolute time (clamped to >= now()).
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventAction>>>
  EventId schedule_at(SimTime when, F&& f) {
    validate_callable(f);
    if (when < now_) when = now_;
    if (squeue_) return squeue_->emplace(when, std::forward<F>(f));
    return queue_.emplace(when, std::forward<F>(f));
  }

  /// Overloads for pre-built actions.
  EventId schedule_in(SimTime delay, EventAction action);
  EventId schedule_at(SimTime when, EventAction action);

  /// Schedules a batch of deferred emissions in order (times clamped to
  /// >= now()) and clears the batch. This is the merge half of the
  /// fork/join deferred-emission protocol: shards buffer emissions,
  /// the join commits each shard's buffer in shard order, and sequence
  /// numbers come out identical to serial execution.
  void schedule_deferred(std::vector<EventQueue::Deferred>& batch);

  /// Cancels a pending event; returns true iff it was still pending.
  bool cancel(EventId id) noexcept {
    return squeue_ ? squeue_->cancel(id) : queue_.cancel(id);
  }

  /// Runs events until the queue drains or the clock passes `horizon`.
  /// Events at exactly `horizon` still run. Returns events executed.
  std::size_t run_until(SimTime horizon);

  /// Runs until the queue is empty. Returns events executed.
  std::size_t run_all();

  /// Executes exactly one event if available; returns whether one ran.
  bool step();

  /// Live events still pending.
  [[nodiscard]] std::size_t pending() const noexcept {
    return squeue_ ? squeue_->size() : queue_.size();
  }

  /// High-water mark of pending events since construction.
  [[nodiscard]] std::size_t peak_pending() const noexcept {
    return squeue_ ? squeue_->peak_size() : queue_.peak_size();
  }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  /// Rejects the one empty callable the API can meet (a null
  /// std::function); arbitrary callables are always invocable.
  template <typename F>
  static void validate_callable(const F& f) {
    if constexpr (std::is_same_v<std::decay_t<F>, std::function<void()>>) {
      if (!f) throw std::invalid_argument("Simulator: empty action");
    }
  }

  /// Sharded-engine drain: interleaves ordinary events and frontier
  /// dispatches in global (time, seq) order up to `horizon`.
  std::size_t drain_sharded(SimTime horizon);

  /// Lax drain: repeats { anchor at the earliest pending (time, seq),
  /// fork per-shard pops of everything due within the skew window,
  /// execute serially in shard order, sweep hand-off barriers through
  /// the window } until past `horizon`.
  std::size_t drain_lax(SimTime horizon);

  EventQueue queue_;
  std::unique_ptr<ShardedEventQueue> squeue_;
  FrontierHook frontier_;
  LaxConfig lax_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
};

/// Repeating event helper: reschedules itself every `period` until
/// stop() or the owning simulator drains. One pending event at a time;
/// re-arming reuses the inline [this] capture, so ticking never
/// allocates. Used for source emission and ad-hoc periodic work; fleets
/// of same-period ticks belong on a RoundScheduler instead.
class PeriodicProcess {
 public:
  PeriodicProcess(Simulator& sim, SimTime period, EventAction tick);
  ~PeriodicProcess();
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Starts with the first tick after `initial_delay`.
  void start(SimTime initial_delay = 0.0);

  /// Cancels the pending tick; further ticks stop.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] SimTime period() const noexcept { return period_; }

 private:
  void arm(SimTime delay);
  void fire();

  Simulator& sim_;
  SimTime period_;
  EventAction tick_;
  EventId pending_event_ = kInvalidEvent;
  bool running_ = false;
};

}  // namespace continu::sim
