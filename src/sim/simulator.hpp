#pragma once
// Deterministic discrete-event simulator: virtual clock + event queue.
//
// Everything in the reproduction — buffer-map exchanges, segment
// transfers, DHT routing hops, churn, playback ticks — executes as
// events on one Simulator instance, so a (seed, config) pair fully
// determines a run.
//
// Scheduling is allocation-free for ordinary captures: actions are
// EventActions (small-buffer optimized) stored directly in the queue's
// slot pool, and cancel() is an O(1) slot write.

#include <functional>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace continu::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in seconds.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` to run at now() + delay (delay clamped to >= 0).
  /// Returns a handle usable with cancel(). Accepts any callable;
  /// captures up to EventAction::kInlineCapacity bytes never allocate
  /// (the callable is constructed directly in the queue's slot pool).
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventAction>>>
  EventId schedule_in(SimTime delay, F&& f) {
    validate_callable(f);
    if (delay < 0.0) delay = 0.0;
    return queue_.emplace(now_ + delay, std::forward<F>(f));
  }

  /// Schedules `action` at an absolute time (clamped to >= now()).
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventAction>>>
  EventId schedule_at(SimTime when, F&& f) {
    validate_callable(f);
    if (when < now_) when = now_;
    return queue_.emplace(when, std::forward<F>(f));
  }

  /// Overloads for pre-built actions.
  EventId schedule_in(SimTime delay, EventAction action);
  EventId schedule_at(SimTime when, EventAction action);

  /// Schedules a batch of deferred emissions in order (times clamped to
  /// >= now()) and clears the batch. This is the merge half of the
  /// fork/join deferred-emission protocol: shards buffer emissions,
  /// the join commits each shard's buffer in shard order, and sequence
  /// numbers come out identical to serial execution.
  void schedule_deferred(std::vector<EventQueue::Deferred>& batch);

  /// Cancels a pending event; returns true iff it was still pending.
  bool cancel(EventId id) noexcept { return queue_.cancel(id); }

  /// Runs events until the queue drains or the clock passes `horizon`.
  /// Events at exactly `horizon` still run. Returns events executed.
  std::size_t run_until(SimTime horizon);

  /// Runs until the queue is empty. Returns events executed.
  std::size_t run_all();

  /// Executes exactly one event if available; returns whether one ran.
  bool step();

  /// Live events still pending.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// High-water mark of pending events since construction.
  [[nodiscard]] std::size_t peak_pending() const noexcept {
    return queue_.peak_size();
  }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  /// Rejects the one empty callable the API can meet (a null
  /// std::function); arbitrary callables are always invocable.
  template <typename F>
  static void validate_callable(const F& f) {
    if constexpr (std::is_same_v<std::decay_t<F>, std::function<void()>>) {
      if (!f) throw std::invalid_argument("Simulator: empty action");
    }
  }

  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
};

/// Repeating event helper: reschedules itself every `period` until
/// stop() or the owning simulator drains. One pending event at a time;
/// re-arming reuses the inline [this] capture, so ticking never
/// allocates. Used for source emission and ad-hoc periodic work; fleets
/// of same-period ticks belong on a RoundScheduler instead.
class PeriodicProcess {
 public:
  PeriodicProcess(Simulator& sim, SimTime period, EventAction tick);
  ~PeriodicProcess();
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Starts with the first tick after `initial_delay`.
  void start(SimTime initial_delay = 0.0);

  /// Cancels the pending tick; further ticks stop.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] SimTime period() const noexcept { return period_; }

 private:
  void arm(SimTime delay);
  void fire();

  Simulator& sim_;
  SimTime period_;
  EventAction tick_;
  EventId pending_event_ = kInvalidEvent;
  bool running_ = false;
};

}  // namespace continu::sim
