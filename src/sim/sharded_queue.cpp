#include "sim/sharded_queue.hpp"

#include <stdexcept>

namespace continu::sim {

namespace {

std::uint32_t round_up_pow2(unsigned shards) {
  if (shards < 2) shards = 2;
  if (shards > ShardedEventQueue::kMaxShards) {
    throw std::invalid_argument("ShardedEventQueue: shard count too large");
  }
  std::uint32_t n = 2;
  while (n < shards) n <<= 1;
  return n;
}

}  // namespace

ShardedEventQueue::ShardedEventQueue(unsigned shards)
    : shards_(round_up_pow2(shards)),
      shard_mask_(static_cast<std::uint32_t>(shards_.size()) - 1),
      meta_(static_cast<std::uint32_t>(shards_.size())) {}

EventId ShardedEventQueue::push(SimTime time, EventAction action) {
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t shard = shard_of_seq(seq);
  const EventId id = shards_[shard].push_with_seq(seq, time, std::move(action));
  note_push(shard);
  return id;
}

void ShardedEventQueue::push_all(std::vector<EventQueue::Deferred>& batch) {
  for (EventQueue::Deferred& deferred : batch) {
    (void)push(deferred.time, std::move(deferred.action));
  }
  batch.clear();
}

void ShardedEventQueue::note_push(std::uint32_t shard) {
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  refresh_meta(shard);
}

void ShardedEventQueue::refresh_meta(std::uint32_t shard) {
  SimTime time;
  EventId id;
  if (shards_[shard].peek(time, id)) {
    meta_.update(shard, time, id >> EventQueue::kSlotBits);
  } else {
    meta_.clear(shard);
  }
}

void ShardedEventQueue::note_frontier(SimTime time) {
  if (time <= frontier_time_) return;
  frontier_time_ = time;
  ++frontier_advances_;
  // Shards with no event at the new frontier instant would idle in a
  // parallel shard drain — count them (absent shards included).
  std::uint64_t active = 0;
  meta_.for_each([&](std::uint32_t, SimTime t, std::uint64_t) {
    if (t == time) ++active;
  });
  frontier_stalled_shards_ += shards_.size() - active;
}

bool ShardedEventQueue::acquire_due(SimTime horizon, DueEvent& out) {
  if (meta_.empty()) return false;
  const MetaHeap::Top top = meta_.top();
  if (top.time > horizon) return false;
  note_frontier(top.time);
  EventQueue::DueEvent inner;
  // The meta entry is kept exact, so the shard's head is exactly
  // (top.time, top.key) and must be acquirable at that horizon.
  const bool ok = shards_[top.slot].acquire_due(top.time, inner);
  assert(ok);
  (void)ok;
  --live_;
  refresh_meta(top.slot);
  out.time = inner.time;
  out.slot_index = inner.slot_index;
  out.shard = top.slot;
  return true;
}

void ShardedEventQueue::execute_and_release(const DueEvent& due) {
  EventQueue::DueEvent inner;
  inner.time = due.time;
  inner.slot_index = due.slot_index;
  shards_[due.shard].execute_and_release(inner);
}

bool ShardedEventQueue::cancel(EventId id) noexcept {
  if (id == kInvalidEvent) return false;
  const std::uint32_t shard = shard_of_id(id);
  if (!shards_[shard].cancel(id)) return false;
  --live_;
  refresh_meta(shard);
  return true;
}

void ShardedEventQueue::configure_lax(unsigned skew_buckets) {
  window_.resize(shards_.size());
  lax_lead_hist_.assign(static_cast<std::size_t>(skew_buckets) + 1, 0);
}

void ShardedEventQueue::collect_window(std::uint32_t shard, SimTime limit) {
  shards_[shard].collect_window(limit, window_[shard]);
}

void ShardedEventQueue::finish_window(SimTime anchor, SimTime grid_s) {
  ++lax_windows_;
  const std::size_t buckets = lax_lead_hist_.size();
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (window_[s].empty()) {
      ++lax_stalled_shards_;
    } else if (buckets > 0 && grid_s > 0.0) {
      for (const EventQueue::WindowRef& ref : window_[s]) {
        std::size_t lead =
            static_cast<std::size_t>((ref.time - anchor) / grid_s);
        if (lead >= buckets) lead = buckets - 1;
        ++lax_lead_hist_[lead];
      }
    }
    refresh_meta(s);
  }
}

bool ShardedEventQueue::peek(SimTime& time, std::uint64_t& seq) const {
  if (meta_.empty()) return false;
  const MetaHeap::Top top = meta_.top();
  time = top.time;
  seq = top.key;
  return true;
}

}  // namespace continu::sim
