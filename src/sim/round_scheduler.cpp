#include "sim/round_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace continu::sim {

RoundScheduler::RoundScheduler(Simulator& sim, SimTime period,
                               std::function<void(std::size_t)> tick)
    : sim_(sim), period_(period), tick_(std::move(tick)) {
  if (period_ <= 0.0) {
    throw std::invalid_argument("RoundScheduler: period must be positive");
  }
  if (!tick_) {
    throw std::invalid_argument("RoundScheduler: empty tick");
  }
}

RoundScheduler::~RoundScheduler() {
  if (armed_ != kInvalidEvent) {
    sim_.cancel(armed_);
  }
}

void RoundScheduler::push_entry(Entry entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), LaterEntry{});
}

RoundScheduler::Entry RoundScheduler::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), LaterEntry{});
  const Entry top = heap_.back();
  heap_.pop_back();
  return top;
}

void RoundScheduler::drop_dead() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    (void)pop_entry();
  }
}

RoundScheduler::Handle RoundScheduler::add(SimTime initial_delay, std::size_t user) {
  if (initial_delay < 0.0) initial_delay = 0.0;
  return add_at(sim_.now() + initial_delay, user);
}

RoundScheduler::Handle RoundScheduler::add_at(SimTime first_tick, std::size_t user) {
  std::uint32_t index;
  if (free_head_ != kNoSlot) {
    index = free_head_;
    free_head_ = parts_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(parts_.size());
    parts_.push_back(Participant{});
  }
  Participant& p = parts_[index];
  p.user = user;
  p.alive = true;
  if (first_tick < sim_.now()) first_tick = sim_.now();
  push_entry(Entry{first_tick, next_seq_++, index, p.generation});
  ++active_;
  rearm();
  return Handle{index, p.generation};
}

bool RoundScheduler::remove(Handle handle) noexcept {
  if (handle.slot >= parts_.size()) return false;
  Participant& p = parts_[handle.slot];
  if (!p.alive || p.generation != handle.generation) return false;
  p.alive = false;
  ++p.generation;  // invalidates heap entries and outstanding handles
  p.next_free = free_head_;
  free_head_ = handle.slot;
  --active_;
  return true;
}

bool RoundScheduler::contains(Handle handle) const noexcept {
  if (handle.slot >= parts_.size()) return false;
  const Participant& p = parts_[handle.slot];
  return p.alive && p.generation == handle.generation;
}

void RoundScheduler::fire() {
  armed_ = kInvalidEvent;
  // Batch: every live tick due at exactly THIS instant, in add()
  // order. Anchoring on now() (not the heap minimum) matters: if a
  // remove() from outside a tick deleted the participant the proxy
  // was armed for, the surviving minimum lies in the future and must
  // NOT run early — the rearm below re-aims the proxy instead.
  const SimTime due = sim_.now();
  drop_dead();
  if (batch_tick_) {
    // Batch mode: collect every live tick due at this instant (add
    // order — the heap tie-break), report them in one call, then
    // re-arm survivors. Seq numbers are assigned after the batch, but
    // relative order within it matches the interleaved per-tick mode.
    due_entries_.clear();
    due_users_.clear();
    while (!heap_.empty() && heap_.front().time <= due) {
      const Entry e = pop_entry();
      if (!entry_live(e)) continue;
      due_entries_.push_back(e);
      due_users_.push_back(parts_[e.slot].user);
    }
    if (!due_entries_.empty()) batch_tick_(due_users_);
    for (const Entry& e : due_entries_) {
      const Participant& p = parts_[e.slot];
      if (p.alive && p.generation == e.generation) {
        push_entry(Entry{e.time + period_, next_seq_++, e.slot, e.generation});
      }
    }
  } else {
    while (!heap_.empty() && heap_.front().time <= due) {
      const Entry e = pop_entry();
      if (!entry_live(e)) continue;
      tick_(parts_[e.slot].user);
      // The tick may have removed its own participant (or recycled the
      // slot); only a still-matching generation re-arms the next round.
      // next = fired + period, the exact arithmetic PeriodicProcess used
      // (e.time == now for every entry the proxy was armed for).
      const Participant& p = parts_[e.slot];
      if (p.alive && p.generation == e.generation) {
        push_entry(Entry{e.time + period_, next_seq_++, e.slot, e.generation});
      }
    }
  }
  rearm();
}

void RoundScheduler::rearm() {
  drop_dead();
  if (heap_.empty()) {
    if (armed_ != kInvalidEvent) {
      sim_.cancel(armed_);
      armed_ = kInvalidEvent;
    }
    return;
  }
  const SimTime due = heap_.front().time;
  if (armed_ != kInvalidEvent) {
    if (armed_time_ == due) return;
    sim_.cancel(armed_);
  }
  armed_time_ = due;
  armed_ = sim_.schedule_at(due, [this] { fire(); });
}

}  // namespace continu::sim
