#include "sim/event_queue.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace continu::sim {

std::uint32_t EventQueue::grow_pool() {
  if (slot_count_ > kSlotMask) {
    throw std::length_error("EventQueue: pending-event slot pool exhausted");
  }
  if ((slot_count_ & (kBlockSize - 1)) == 0) {
    blocks_.push_back(std::make_unique<Slot[]>(kBlockSize));
  }
  return slot_count_++;
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNoFree) {
    const std::uint32_t index = free_head_;
    free_head_ = slot(index).next_free;
    return index;
  }
  return grow_pool();
}

void EventQueue::release_slot(std::uint32_t index) noexcept {
  Slot& s = slot(index);
  s.id = kInvalidEvent;
  s.next_free = free_head_;
  free_head_ = index;
}

EventId EventQueue::push(SimTime time, EventAction action) {
  return push_with_seq(next_seq_, time, std::move(action));
}

EventId EventQueue::push_with_seq(std::uint64_t seq, SimTime time,
                                  EventAction action) {
  if (!action) {
    throw std::invalid_argument("EventQueue: empty action");
  }
  const std::uint32_t index = acquire_slot();
  if (seq >= next_seq_) next_seq_ = seq + 1;
  const EventId id = (seq << kSlotBits) | index;
  Slot& s = slot(index);
  // Same publish-last ordering as emplace(): the slot id is set only
  // once the entry and action are in place, so a heap_ allocation
  // failure cannot leave a live-looking slot behind.
  s.action = std::move(action);
  heap_.push_back(HeapEntry{time, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  s.id = id;
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  return id;
}

void EventQueue::push_all(std::vector<Deferred>& batch) {
  for (Deferred& deferred : batch) {
    (void)push(deferred.time, std::move(deferred.action));
  }
  batch.clear();
}

void EventQueue::remove_top() noexcept {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

void EventQueue::drop_dead_top() const {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (slot(top.id & kSlotMask).id == top.id) return;  // live
    const_cast<EventQueue*>(this)->remove_top();
  }
}

Event EventQueue::take_top(HeapEntry top) {
  const std::uint32_t index = top.id & kSlotMask;
  Event out;
  out.time = top.time;
  out.id = top.id;
  out.action = std::move(slot(index).action);
  release_slot(index);
  --live_;
  remove_top();
  return out;
}

Event EventQueue::pop() {
  drop_dead_top();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop on empty queue");
  }
  return take_top(heap_.front());
}

bool EventQueue::pop_until(SimTime horizon, Event& out) {
  drop_dead_top();
  if (heap_.empty() || heap_.front().time > horizon) return false;
  out = take_top(heap_.front());
  return true;
}

bool EventQueue::acquire_due(SimTime horizon, DueEvent& out) {
  for (;;) {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.front();
    // A stale (cancelled) top beyond the horizon is left in place —
    // drop_dead_top() purges it whenever ordering queries need it.
    if (top.time > horizon) return false;
    const std::uint32_t index = top.id & kSlotMask;
    Slot& s = slot(index);
    // Start the slot-line fill now; the heap percolation below hides
    // most of its latency.
    __builtin_prefetch(&s, 1);
    remove_top();
    if (s.id != top.id) continue;  // cancelled or stale: discard lazily
    // De-register but do NOT free: the slot must not be reused while
    // its action runs, and a cancel() of the running id must no-op.
    s.id = kInvalidEvent;
    --live_;
    out.time = top.time;
    out.slot_index = index;
    // Start fetching the NEXT event's slot a whole pop early — the
    // caller's action execution plus the next heap percolation give
    // the line a full miss latency of lead time.
    if (!heap_.empty()) {
      __builtin_prefetch(&slot(heap_.front().id & kSlotMask), 1);
    }
    return true;
  }
}

void EventQueue::execute_and_release(const DueEvent& due) {
  // The slot returns to the freelist even if the action throws —
  // consume() likewise destroys the capture on the throw path, so a
  // throwing action cannot leak queue state.
  struct ReleaseGuard {
    EventQueue* queue;
    std::uint32_t index;
    ~ReleaseGuard() {
      Slot& s = queue->slot(index);
      s.next_free = queue->free_head_;
      queue->free_head_ = index;
    }
  } guard{this, due.slot_index};
  // Slot blocks never move, so the reference stays valid even if the
  // action schedules new events (growing the pool or the heap).
  slot(due.slot_index).action.consume();
}

bool EventQueue::cancel(EventId id) noexcept {
  if (id == kInvalidEvent) return false;
  const std::uint32_t index = id & kSlotMask;
  if (index >= slot_count_) return false;
  Slot& s = slot(index);
  if (s.id != id) return false;
  s.action.reset();
  release_slot(index);
  --live_;
  return true;
}

SimTime EventQueue::next_time() const {
  drop_dead_top();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::next_time on empty queue");
  }
  return heap_.front().time;
}

bool EventQueue::peek(SimTime& time, EventId& id) const {
  drop_dead_top();
  if (heap_.empty()) return false;
  time = heap_.front().time;
  id = heap_.front().id;
  return true;
}

void EventQueue::collect_window(SimTime limit, std::vector<WindowRef>& out) {
  for (;;) {
    if (heap_.empty()) return;
    const HeapEntry top = heap_.front();
    if (top.time > limit) return;
    remove_top();
    // Dead tops (cancelled before collection) are reaped here exactly
    // like drop_dead_top(); live entries stay registered so a cancel
    // during the window's execution still lands.
    if (slot(top.id & kSlotMask).id != top.id) continue;
    out.push_back(WindowRef{top.time, top.id});
  }
}

bool EventQueue::execute_collected(const WindowRef& ref) {
  const std::uint32_t index = static_cast<std::uint32_t>(ref.id & kSlotMask);
  Slot& s = slot(index);
  if (s.id != ref.id) return false;  // cancelled since collection
  // De-register then execute in place — same contract as
  // acquire_due + execute_and_release, minus the heap pop (collection
  // already removed the entry).
  s.id = kInvalidEvent;
  --live_;
  DueEvent due;
  due.time = ref.time;
  due.slot_index = index;
  execute_and_release(due);
  return true;
}

}  // namespace continu::sim
