#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace continu::sim {

void EventQueue::push(Event event) {
  pending_.insert(event.id);
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
}

void EventQueue::drop_cancelled_top() const {
  while (!heap_.empty() && cancelled_.count(heap_.front().id) != 0) {
    std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
    cancelled_.erase(heap_.back().id);
    heap_.pop_back();
  }
}

Event EventQueue::pop() {
  drop_cancelled_top();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop on empty queue");
  }
  std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
  Event e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  return e;
}

bool EventQueue::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

SimTime EventQueue::next_time() const {
  drop_cancelled_top();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::next_time on empty queue");
  }
  return heap_.front().time;
}

}  // namespace continu::sim
