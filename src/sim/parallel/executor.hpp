#pragma once
// ParallelExecutor — deterministic fork/join over a persistent worker
// pool, the parallel substrate for intra-session execution.
//
// The central contract is DETERMINISM BY CONSTRUCTION: for_shards()
// splits [0, count) into fixed-size shards whose boundaries depend only
// on (count, grain) — never on the thread count or on scheduling — and
// the caller merges per-shard results in shard order after the join.
// Any quantity accumulated per shard (stats deltas, floating-point
// sums, buffered event emissions) therefore reduces in exactly the same
// order at threads = 1, 2, 4 or 8, which is what lets a parallel
// session fingerprint bit-identically to a serial one.
//
// Shards are claimed dynamically (a mutex-guarded ticket counter, which
// at round-batch granularity costs nothing) so a slow shard does not
// idle the rest of the pool; WHO runs a shard is nondeterministic, but
// because shards only touch disjoint state and merge order is fixed,
// that never shows in results.
//
// threads == 1 never spawns a pool and runs shards inline — through the
// SAME decomposition, so the serial path is the parallel path with one
// worker, not a separate code path that could drift.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace continu::sim::parallel {

/// Monotonic wall clock in nanoseconds, shared by the executor's shard
/// timing and the obs layer's serial-span brackets so every timestamp
/// lives on one axis.
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;

/// Passive fork/join instrumentation hook (the obs layer's phase
/// profiler). on_fork and on_join run serially on the calling thread,
/// bracketing the job; on_shard_done runs on whichever worker executed
/// the shard but may only touch state indexed by that shard — the
/// executor's join synchronizes those writes before on_join reads them.
/// Observers must not throw and must not call back into the executor.
class ForkObserver {
 public:
  virtual ~ForkObserver() = default;
  /// A job of `shards` shards is about to launch (serial, pre-fork).
  virtual void on_fork(std::size_t shards) = 0;
  /// Shard `shard` ran on [t0_ns, t1_ns] (worker thread, mid-fork).
  virtual void on_shard_done(std::size_t shard, std::uint64_t t0_ns,
                             std::uint64_t t1_ns) = 0;
  /// The job joined; fork_t0_ns..join_t1_ns is the fork wall time
  /// (serial, post-join — every on_shard_done is visible here).
  virtual void on_join(std::uint64_t fork_t0_ns, std::uint64_t join_t1_ns) = 0;
};

class ParallelExecutor {
 public:
  /// fn(shard, begin, end): process items [begin, end) of the current
  /// for_shards() range. `shard` indexes per-shard result buffers.
  using ShardFn = std::function<void(std::size_t shard, std::size_t begin,
                                     std::size_t end)>;

  /// threads == 0 resolves to std::thread::hardware_concurrency()
  /// (minimum 1). The pool persists for the executor's lifetime:
  /// threads - 1 workers, plus the calling thread which always
  /// participates in shard execution.
  explicit ParallelExecutor(unsigned threads = 1);
  ~ParallelExecutor();
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Number of shards for_shards(count, grain, ...) will run — a pure
  /// function of (count, grain) so callers can pre-size per-shard
  /// buffers. Thread-count independent by design.
  [[nodiscard]] static std::size_t shard_count(std::size_t count,
                                               std::size_t grain) noexcept {
    if (grain == 0) grain = 1;
    return (count + grain - 1) / grain;
  }

  /// Runs fn over every shard of [0, count); returns after ALL shards
  /// completed (the join). The first shard exception (lowest shard
  /// index) is rethrown on the calling thread. Reentrant calls from
  /// inside a shard are not supported.
  void for_shards(std::size_t count, std::size_t grain, const ShardFn& fn);

  /// Installs (or clears, with nullptr) the fork/join observer. Serial
  /// only — never call while a job is in flight. When no observer is
  /// set the cost is one pointer check per fork and per shard claim.
  void set_observer(ForkObserver* observer) noexcept { observer_ = observer; }

 private:
  void worker_loop();
  /// Claims and runs shards of the current job until none remain.
  void run_claims(std::uint64_t job_epoch);

  unsigned threads_;
  std::vector<std::thread> workers_;
  // Not guarded by mutex_: written serially between jobs, read by
  // workers only during a job (the job-start notify publishes it).
  ForkObserver* observer_ = nullptr;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;

  // Current job, guarded by mutex_. epoch_ increments per job; workers
  // verify it on every claim so a late-waking worker can never claim a
  // shard of a job that already completed (or double-run a new one).
  std::uint64_t epoch_ = 0;
  const ShardFn* fn_ = nullptr;
  std::size_t count_ = 0;
  std::size_t grain_ = 1;
  std::size_t shards_ = 0;
  std::size_t next_claim_ = 0;
  std::size_t completed_ = 0;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace continu::sim::parallel
