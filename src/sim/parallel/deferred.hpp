#pragma once
// Per-shard buffers for the fork/join phases of a parallel session —
// the "merge in shard order" half of the determinism contract.
//
// Worker shards may not touch shared mutable engine state (the event
// queue's sequence counter, the session's stats, a collector). Instead
// each shard owns one of these buffers, records what it WOULD have
// done, and after the join the caller applies every buffer in shard
// order. Because shard boundaries depend only on (count, grain) — see
// ParallelExecutor::shard_count — the applied order is identical at
// every thread count, so event sequence numbers and floating-point
// accumulations reproduce serial execution exactly.

#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace continu::sim::parallel {

/// Buffered event emissions from one shard of a fork/join phase.
class EmissionBuffer {
 public:
  /// Records an emission at an ABSOLUTE simulation time. Callables are
  /// stored as EventActions (small-buffer optimized), so deferring an
  /// inline-sized capture allocates nothing beyond the buffer's vector.
  template <typename F>
  void defer_at(SimTime time, F&& f) {
    entries_.push_back(EventQueue::Deferred{time, EventAction(std::forward<F>(f))});
  }

  /// Pushes every recorded emission into the simulator, in record
  /// order, and clears the buffer. Called once per shard, in shard
  /// order, after the join.
  void flush_into(Simulator& sim) { sim.schedule_deferred(entries_); }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }

 private:
  std::vector<EventQueue::Deferred> entries_;
};

/// Ordered reduction helper: folds per-shard partials into `total` in
/// shard order with `total += partial`. Trivial on purpose — the value
/// is the NAME at call sites: it marks the spots whose correctness
/// depends on the fixed shard structure, not on thread count.
template <typename T>
void reduce_in_order(std::vector<T>& partials, T& total) {
  for (T& partial : partials) {
    total += partial;
  }
}

}  // namespace continu::sim::parallel
