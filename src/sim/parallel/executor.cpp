#include "sim/parallel/executor.hpp"

#include <algorithm>
#include <chrono>

namespace continu::sim::parallel {

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ParallelExecutor::ParallelExecutor(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ParallelExecutor::for_shards(std::size_t count, std::size_t grain,
                                  const ShardFn& fn) {
  if (grain == 0) grain = 1;
  const std::size_t shards = shard_count(count, grain);
  if (shards == 0) return;
  ForkObserver* const obs = observer_;
  const std::uint64_t fork_t0 = obs != nullptr ? monotonic_ns() : 0;
  if (obs != nullptr) obs->on_fork(shards);
  if (workers_.empty() || shards == 1) {
    // Inline path: the SAME shard decomposition as the pooled path, so
    // per-shard accumulation (and its floating-point merge order) is
    // identical at every thread count.
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * grain;
      const std::size_t end = std::min(count, begin + grain);
      if (obs != nullptr) {
        const std::uint64_t t0 = monotonic_ns();
        fn(s, begin, end);
        obs->on_shard_done(s, t0, monotonic_ns());
      } else {
        fn(s, begin, end);
      }
    }
    if (obs != nullptr) obs->on_join(fork_t0, monotonic_ns());
    return;
  }

  std::uint64_t job_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    count_ = count;
    grain_ = grain;
    shards_ = shards;
    next_claim_ = 0;
    completed_ = 0;
    errors_.assign(shards, nullptr);
    job_epoch = ++epoch_;
  }
  start_cv_.notify_all();
  run_claims(job_epoch);  // the calling thread is worker 0

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return completed_ == shards_; });
    fn_ = nullptr;  // no late claims against a finished job
  }
  // The join above synchronizes every worker's on_shard_done writes.
  if (obs != nullptr) obs->on_join(fork_t0, monotonic_ns());
  // Rethrow by shard index, not completion order, so WHICH error
  // surfaces is as deterministic as everything else.
  for (std::size_t s = 0; s < shards; ++s) {
    if (errors_[s]) std::rethrow_exception(errors_[s]);
  }
}

void ParallelExecutor::run_claims(std::uint64_t job_epoch) {
  for (;;) {
    std::size_t s = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    const ShardFn* fn = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (epoch_ != job_epoch || fn_ == nullptr || next_claim_ >= shards_) return;
      s = next_claim_++;
      begin = s * grain_;
      end = std::min(count_, begin + grain_);
      fn = fn_;
    }
    ForkObserver* const obs = observer_;
    std::exception_ptr error = nullptr;
    const std::uint64_t t0 = obs != nullptr ? monotonic_ns() : 0;
    try {
      (*fn)(s, begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    if (obs != nullptr) obs->on_shard_done(s, t0, monotonic_ns());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error) errors_[s] = error;
      if (++completed_ == shards_) done_cv_.notify_all();
    }
  }
}

void ParallelExecutor::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    start_cv_.wait(lock, [this, seen] {
      return stop_ || (epoch_ != seen && fn_ != nullptr);
    });
    if (stop_) return;
    const std::uint64_t job_epoch = epoch_;
    seen = job_epoch;
    lock.unlock();
    run_claims(job_epoch);
    lock.lock();
  }
}

}  // namespace continu::sim::parallel
