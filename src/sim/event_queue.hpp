#pragma once
// Binary-heap priority queue with lazy cancellation.
//
// Cancellation matters: a node that leaves the overlay abandons its
// pending periodic events. We track the set of pending ids so cancelling
// an already-fired (or never-scheduled) id is a strict no-op; cancelled
// entries are skipped lazily on pop, keeping cancel O(1) and pop
// amortized O(log n).

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"

namespace continu::sim {

class EventQueue {
 public:
  /// Pushes an event; the id must be unique (the Simulator allocates them).
  void push(Event event);

  /// Pops the earliest non-cancelled event. Requires !empty().
  [[nodiscard]] Event pop();

  /// Cancels a pending event. Returns true iff the id was pending;
  /// already-fired or unknown ids are ignored.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

 private:
  void drop_cancelled_top() const;

  // Mutable so next_time() can purge cancelled heads without changing
  // observable state.
  mutable std::vector<Event> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_;
};

}  // namespace continu::sim
