#pragma once
// Slot-pool event queue: a 4-ary implicit heap of 16-byte (time, id)
// entries over a generation-stamped pool of event slots.
//
// Design, and why it beats the previous binary heap + two
// unordered_sets:
//   * The heap holds only (time, id) — 16 bytes per entry instead of a
//     48+ byte Event with its action, so sift paths touch 3x fewer
//     cache lines; the 4-ary layout halves the tree depth on top.
//   * Actions live in a chunked slot pool with stable addresses. An
//     EventId packs (sequence << 24 | slot): the monotonic sequence
//     gives deterministic FIFO tie-breaking among equal times, the low
//     bits find the slot in O(1).
//   * cancel() is one compare + one array write (free the slot); the
//     heap entry dies lazily when it surfaces, validated by a single
//     id compare against the slot. No side tables, no hashing.
//
// Cancellation matters: a node that leaves the overlay abandons its
// pending periodic events; cancelling an already-fired or stale id is
// a strict no-op (the slot's current id no longer matches).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event.hpp"

namespace continu::sim {

class EventQueue {
 public:
  /// Slot-index bits in an EventId: up to ~16.7M concurrently pending
  /// events; the 40-bit sequence above them outlasts any plausible run.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1u;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `action` at `time`; returns the unique handle. The
  /// action must be non-empty.
  EventId push(SimTime time, EventAction action);

  /// push() with a caller-supplied sequence number instead of the
  /// queue's own counter — the per-shard member queues of a
  /// ShardedEventQueue share ONE global sequence stream so cross-shard
  /// tie-breaks match the single-queue engine. Sequences must be
  /// unique per queue; the internal counter is bumped past `seq` so
  /// mixing with plain push()/emplace() stays collision-free.
  EventId push_with_seq(std::uint64_t seq, SimTime time, EventAction action);

  /// Hot scheduling path: constructs the callable directly in its pool
  /// slot (zero moves, zero allocations for inline-sized captures).
  /// The slot line is prefetched while the heap insertion runs.
  template <typename F>
  EventId emplace(SimTime time, F&& f) {
    return emplace_with_seq(next_seq_++, time, std::forward<F>(f));
  }

  /// emplace() with a caller-supplied sequence (see push_with_seq).
  template <typename F>
  EventId emplace_with_seq(std::uint64_t seq, SimTime time, F&& f) {
    const std::uint32_t index = free_head_ != kNoFree ? free_head_ : grow_pool();
    Slot& s = slot(index);  // blocks are stable; heap growth can't move it
    __builtin_prefetch(&s, 1);
    if (seq >= next_seq_) next_seq_ = seq + 1;
    const EventId id = (seq << kSlotBits) | index;
    heap_.push_back(HeapEntry{time, id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    // Construct the action BEFORE publishing the slot: if the capture's
    // construction throws (or was an empty std::function), the slot
    // still reads as free (id mismatch), so the heap entry above is
    // lazily reaped and the freelist is untouched — the queue stays
    // consistent.
    s.action.emplace(std::forward<F>(f));
    if (!s.action) {
      throw std::invalid_argument("EventQueue: empty action");
    }
    if (index == free_head_) {
      free_head_ = s.next_free;
      // Chain-prefetch the next free slot: it gets a whole push of
      // lead time before the next emplace writes it.
      if (free_head_ != kNoFree) __builtin_prefetch(&slot(free_head_), 1);
    }
    s.id = id;
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return id;
  }

  /// Deferred-emission record: a (time, action) pair captured OFF the
  /// queue. Worker shards of a fork/join phase must not touch the queue
  /// (sequence numbers are global mutable state), so they buffer their
  /// emissions as Deferred entries and the join pushes each shard's
  /// buffer in shard order — reproducing exactly the sequence-number
  /// assignment serial execution would have produced.
  struct Deferred {
    SimTime time = 0.0;
    EventAction action;
  };

  /// Pushes every deferred emission in order (sequence numbers are
  /// assigned here, at push time) and clears the batch. Entries with an
  /// empty action are rejected like any other push.
  void push_all(std::vector<Deferred>& batch);

  /// Pops the earliest live event. Requires !empty().
  [[nodiscard]] Event pop();

  /// Pops the earliest live event into `out` iff its time <= horizon.
  /// Returns false (leaving `out` untouched) when the queue is empty
  /// or the next event lies beyond the horizon.
  bool pop_until(SimTime horizon, Event& out);

  /// Zero-copy execution path for the simulator's run loop. A due
  /// event is acquired (de-queued, de-registered so cancels no-op) and
  /// then executed IN PLACE in its slot — the action is never moved.
  /// Every acquire_due must be paired with exactly one
  /// execute_and_release before the next acquire.
  struct DueEvent {
    SimTime time = 0.0;
    std::uint32_t slot_index = 0;
  };
  bool acquire_due(SimTime horizon, DueEvent& out);
  void execute_and_release(const DueEvent& due);

  /// Cancels a pending event in O(1). Returns true iff the id was
  /// live; fired, cancelled or stale ids are ignored.
  bool cancel(EventId id) noexcept;

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// High-water mark of live events since construction.
  [[nodiscard]] std::size_t peak_size() const noexcept { return peak_live_; }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Head (time, id) of the earliest live event without removing it;
  /// returns false when the queue is empty. Purges lazily-cancelled
  /// tops, so the reported head is always live — this is how a
  /// ShardedEventQueue keeps its meta-heap exact.
  bool peek(SimTime& time, EventId& id) const;

  /// Reference to an event collected by a lax window pop: removed from
  /// the heap but still REGISTERED in its slot, so cancels issued
  /// between collection and execution are honoured (the slot id stops
  /// matching and execute_collected skips the ref).
  struct WindowRef {
    SimTime time = 0.0;
    EventId id = kInvalidEvent;
  };

  /// Lax window collection: pops every live heap entry with time <=
  /// limit into `out`, in (time, id) order, WITHOUT de-registering the
  /// slots. Touches only this queue's heap plus slot-id reads, so the
  /// per-shard member queues of a ShardedEventQueue can run this
  /// concurrently — one worker per queue, no shared state.
  void collect_window(SimTime limit, std::vector<WindowRef>& out);

  /// True while a collected ref's event is still live (not cancelled
  /// since collection).
  [[nodiscard]] bool collected_live(const WindowRef& ref) const noexcept {
    return slot(static_cast<std::uint32_t>(ref.id & kSlotMask)).id == ref.id;
  }

  /// Executes a collected ref in place iff still live: de-registers,
  /// consumes the action, releases the slot. Returns whether it ran
  /// (false = cancelled between collection and execution).
  bool execute_collected(const WindowRef& ref);

 private:
  /// 16 bytes; the heap orders by (time, id) and id order among live
  /// entries is schedule order (the sequence occupies the high bits).
  struct HeapEntry {
    SimTime time;
    EventId id;
  };

  struct Slot {
    EventAction action;
    EventId id = kInvalidEvent;  ///< live id; kInvalidEvent when free
    std::uint32_t next_free = kNoFree;
  };

  static constexpr std::uint32_t kNoFree = 0xFFFFFFFFu;
  /// Slots per pool block. Blocks never move, so popped actions can be
  /// relocated out even while an executing action schedules new events.
  static constexpr std::size_t kBlockShift = 9;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;

  [[nodiscard]] Slot& slot(std::uint32_t index) noexcept {
    return blocks_[index >> kBlockShift][index & (kBlockSize - 1)];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t index) const noexcept {
    return blocks_[index >> kBlockShift][index & (kBlockSize - 1)];
  }

  /// Max-heap comparator for std::push_heap/std::pop_heap: "later
  /// fires last" makes the std heap a min-heap on (time, id).
  struct Later {
    [[nodiscard]] bool operator()(const HeapEntry& a,
                                  const HeapEntry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  [[nodiscard]] std::uint32_t acquire_slot();
  /// Appends a fresh slot (and a new block at block boundaries).
  [[nodiscard]] std::uint32_t grow_pool();
  void release_slot(std::uint32_t index) noexcept;

  void remove_top() noexcept;
  /// Discards heap entries whose slot no longer carries their id
  /// (cancelled, or the slot was freed and reused).
  void drop_dead_top() const;
  /// Extracts the validated top entry and frees its slot.
  Event take_top(HeapEntry top);

  std::vector<std::unique_ptr<Slot[]>> blocks_;
  // Mutable so next_time()/pop_until() can purge dead heads without
  // changing observable state.
  mutable std::vector<HeapEntry> heap_;
  std::uint32_t free_head_ = kNoFree;
  std::uint32_t slot_count_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

}  // namespace continu::sim
