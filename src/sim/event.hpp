#pragma once
// Event record and allocation-free action callable for the
// discrete-event engine.
//
// EventAction is a move-only, small-buffer-optimized replacement for
// std::function<void()>: captures up to kInlineCapacity bytes live
// inside the action itself (and therefore inside the queue's slot
// pool), so scheduling an event performs zero heap allocations for
// every capture size the protocol layers actually use. Oversized
// captures fall back to a single heap cell.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

#include "util/types.hpp"

namespace continu::sim {

/// Handle for a scheduled event: (sequence << kSlotBits) | slot.
/// The sequence is globally monotonic, so comparing ids of two pending
/// events orders them by schedule time — the deterministic FIFO
/// tie-break among equal-time events. The low bits address the queue's
/// slot pool; a stale handle (slot since reused) simply fails the
/// queue's one-compare validation.
using EventId = std::uint64_t;

/// Sequences start at 1, so no valid id is ever 0.
inline constexpr EventId kInvalidEvent = 0;

class EventAction {
 public:
  /// Sized for the largest capture the protocol layers schedule (the
  /// DHT routing hop: 48 bytes + the network delivery wrapper's 16).
  /// Keeping this at 64 holds a queue slot to 88 bytes — the slot pool
  /// footprint is what bounds large-session cache behaviour.
  static constexpr std::size_t kInlineCapacity = 64;

  EventAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventAction> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design,
  // mirroring std::function at the scheduling call sites.
  EventAction(F&& f) {
    emplace(std::forward<F>(f));
  }

  EventAction(EventAction&& other) noexcept { move_from(other); }
  EventAction& operator=(EventAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventAction(const EventAction&) = delete;
  EventAction& operator=(const EventAction&) = delete;
  ~EventAction() { reset(); }

  /// Destroys the held callable, leaving the action empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Constructs a callable in place (destroying any current one)
  /// without routing through a temporary EventAction — the zero-move
  /// path the queue's slot pool uses.
  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    reset();
    if constexpr (std::is_same_v<D, std::function<void()>>) {
      if (!f) return;
    }
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &OpsFor<D, /*Inline=*/true>::ops;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(buf_)) = new D(std::forward<F>(f));
      ops_ = &OpsFor<D, /*Inline=*/false>::ops;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the held callable. Requires non-empty.
  void operator()() { ops_->invoke(buf_); }

  /// Invokes the held callable once and destroys it (one indirect call
  /// instead of invoke + destroy), leaving the action empty. The hot
  /// path of the simulator's run loop. Requires non-empty.
  void consume() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->consume(buf_);
  }

  /// True when the callable lives in the inline buffer (introspection
  /// for tests and benches; heap fallback means an oversized capture).
  [[nodiscard]] bool stored_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_stored;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Invoke once, then destroy (fused fire-and-free).
    void (*consume)(void* storage);
    /// Move-constructs into dst from src's storage, destroying src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_stored;
  };

  template <typename D>
  [[nodiscard]] static constexpr bool fits_inline() noexcept {
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D, bool Inline>
  struct OpsFor;

  template <typename D>
  struct OpsFor<D, true> {
    static D* self(void* p) noexcept { return std::launder(reinterpret_cast<D*>(p)); }
    static void invoke(void* p) { (*self(p))(); }
    static void consume(void* p) {
      D* s = self(p);
      // Guard, not a trailing dtor call: the capture must be destroyed
      // even when the invocation throws.
      struct Guard {
        D* d;
        ~Guard() { d->~D(); }
      } guard{s};
      (*s)();
    }
    static void relocate(void* dst, void* src) noexcept {
      D* s = self(src);
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void destroy(void* p) noexcept { self(p)->~D(); }
    static constexpr Ops ops = {&invoke, &consume, &relocate, &destroy, true};
  };

  template <typename D>
  struct OpsFor<D, false> {
    static D* held(void* p) noexcept {
      return *std::launder(reinterpret_cast<D**>(p));
    }
    static void invoke(void* p) { (*held(p))(); }
    static void consume(void* p) {
      struct Guard {
        D* h;
        ~Guard() { delete h; }
      } guard{held(p)};
      (*guard.h)();
    }
    static void relocate(void* dst, void* src) noexcept {
      std::memcpy(dst, src, sizeof(D*));
    }
    static void destroy(void* p) noexcept { delete held(p); }
    static constexpr Ops ops = {&invoke, &consume, &relocate, &destroy, false};
  };

  void move_from(EventAction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// A popped event: fire order is (time, id) — earlier time first, FIFO
/// (schedule order) among equal times, so runs are bit-for-bit
/// reproducible.
struct Event {
  SimTime time = 0.0;
  EventId id = kInvalidEvent;
  EventAction action;
};

}  // namespace continu::sim
