#pragma once
// Event record for the discrete-event engine.

#include <cstdint>
#include <functional>

#include "util/types.hpp"

namespace continu::sim {

/// Unique, monotonically increasing handle for scheduled events; used
/// both for cancellation and for deterministic tie-breaking.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

struct Event {
  SimTime time = 0.0;
  EventId id = kInvalidEvent;
  std::function<void()> action;
};

/// Min-heap ordering: earlier time first; FIFO among equal times so that
/// runs are bit-for-bit reproducible.
struct EventLater {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
};

}  // namespace continu::sim
