#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/parallel/executor.hpp"

namespace continu::sim {

EventId Simulator::schedule_in(SimTime delay, EventAction action) {
  if (!action) {
    throw std::invalid_argument("Simulator: empty action");
  }
  if (delay < 0.0) delay = 0.0;
  if (squeue_) return squeue_->push(now_ + delay, std::move(action));
  return queue_.push(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime when, EventAction action) {
  if (!action) {
    throw std::invalid_argument("Simulator: empty action");
  }
  if (when < now_) when = now_;
  if (squeue_) return squeue_->push(when, std::move(action));
  return queue_.push(when, std::move(action));
}

void Simulator::schedule_deferred(std::vector<EventQueue::Deferred>& batch) {
  for (EventQueue::Deferred& deferred : batch) {
    if (deferred.time < now_) deferred.time = now_;
  }
  if (squeue_) {
    squeue_->push_all(batch);
  } else {
    queue_.push_all(batch);
  }
}

void Simulator::set_lax_drain(LaxConfig lax) {
  if (!squeue_) {
    throw std::logic_error("Simulator::set_lax_drain: single-queue engine");
  }
  if (lax.skew_buckets == 0 || lax.grid_s <= 0.0) {
    throw std::logic_error(
        "Simulator::set_lax_drain: needs skew_buckets >= 1 and a positive grid");
  }
  squeue_->configure_lax(lax.skew_buckets);
  lax_ = std::move(lax);
}

std::size_t Simulator::drain_lax(SimTime horizon) {
  std::size_t ran = 0;
  const unsigned nshards = squeue_->shard_count();
  const SimTime window_s = static_cast<SimTime>(lax_.skew_buckets) * lax_.grid_s;
  for (;;) {
    SimTime qt = 0.0;
    std::uint64_t qseq = 0;
    SimTime dt = 0.0;
    std::uint64_t dseq = 0;
    const bool have_event = squeue_->peek(qt, qseq);
    const bool have_barrier = frontier_.next_key && frontier_.next_key(dt, dseq);
    if (!have_event && !have_barrier) break;
    // The window anchors at the earliest pending (time, seq) across
    // both sources — the strict frontier's instant — and extends one
    // skew window past it. Anchoring at the global minimum is what
    // bounds the clock skew: nothing in the window runs more than
    // `window_s` ahead of something still pending somewhere.
    SimTime anchor = have_event ? qt : dt;
    if (have_barrier && dt < anchor) anchor = dt;
    if (anchor > horizon) break;
    const SimTime limit = std::min(anchor + window_s, horizon);
    // Phase A — forked window collection: every shard pops its events
    // due within the window into its private scratch. Queue-local heap
    // pops only; meta/live settlement is serial in finish_window.
    if (lax_.on_fork) lax_.on_fork(nshards);
    const auto body = [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        squeue_->collect_window(static_cast<std::uint32_t>(s), limit);
      }
    };
    if (lax_.exec != nullptr) {
      lax_.exec->for_shards(nshards, /*grain=*/1, body);
    } else {
      for (unsigned s = 0; s < nshards; ++s) {
        squeue_->collect_window(s, limit);
      }
    }
    squeue_->finish_window(anchor, lax_.grid_s);
    // Phase B — serial execution in shard-index order, each event at
    // its own local clock (this is the skew: the clock is non-monotonic
    // within the window, bounded by window_s). Emissions landing inside
    // the window were not collected — they fence to the next window —
    // and cancels of collected refs are honoured at execution.
    ran += squeue_->execute_window([this](SimTime t) {
      now_ = t;
      ++executed_;
    });
    // Windowed barrier sweep: every hand-off instant <= limit drains in
    // one pass (per-lane pops forked once for the whole window), each
    // instant's batch dispatched at its own clock in time order.
    if (frontier_.dispatch_window) {
      ran += frontier_.dispatch_window(limit, [this](SimTime t) {
        now_ = t;
        ++executed_;
      });
    } else if (frontier_.next_key) {
      while (frontier_.next_key(dt, dseq) && dt <= limit) {
        now_ = dt;
        ++executed_;
        ++ran;
        frontier_.dispatch(dt);
      }
    }
  }
  return ran;
}

std::size_t Simulator::drain_sharded(SimTime horizon) {
  std::size_t ran = 0;
  for (;;) {
    SimTime qt = 0.0;
    std::uint64_t qseq = 0;
    SimTime dt = 0.0;
    std::uint64_t dseq = 0;
    const bool have_event = squeue_->peek(qt, qseq);
    const bool have_barrier = frontier_.next_key && frontier_.next_key(dt, dseq);
    if (!have_event && !have_barrier) break;
    // Global (time, seq) order across both sources. A barrier's key is
    // the sequence of its FIRST pending hand-off — the same rank the
    // single-queue engine's bucket proxy holds, because both are
    // assigned at the first enqueue targeting that instant.
    const bool barrier_first =
        have_barrier &&
        (!have_event || dt < qt || (dt == qt && dseq < qseq));
    if (barrier_first) {
      if (dt > horizon) break;
      now_ = dt;
      ++executed_;
      ++ran;
      frontier_.dispatch(dt);
    } else {
      if (qt > horizon) break;
      ShardedEventQueue::DueEvent due;
      if (!squeue_->acquire_due(horizon, due)) break;
      now_ = due.time;
      ++executed_;
      ++ran;
      squeue_->execute_and_release(due);
    }
  }
  return ran;
}

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t ran = 0;
  if (squeue_) {
    ran = lax() ? drain_lax(horizon) : drain_sharded(horizon);
  } else {
    EventQueue::DueEvent due;
    while (queue_.acquire_due(horizon, due)) {
      now_ = due.time;
      ++executed_;
      ++ran;
      queue_.execute_and_release(due);
    }
  }
  if (now_ < horizon) now_ = horizon;
  return ran;
}

std::size_t Simulator::run_all() {
  if (squeue_) {
    const SimTime inf = std::numeric_limits<SimTime>::infinity();
    return lax() ? drain_lax(inf) : drain_sharded(inf);
  }
  std::size_t ran = 0;
  EventQueue::DueEvent due;
  while (queue_.acquire_due(std::numeric_limits<SimTime>::infinity(), due)) {
    now_ = due.time;
    ++executed_;
    ++ran;
    queue_.execute_and_release(due);
  }
  return ran;
}

bool Simulator::step() {
  if (squeue_) {
    // One iteration of the sharded drain: the barrier-vs-event pick
    // mirrors drain_sharded so single-stepping preserves global order.
    SimTime qt = 0.0;
    std::uint64_t qseq = 0;
    SimTime dt = 0.0;
    std::uint64_t dseq = 0;
    const bool have_event = squeue_->peek(qt, qseq);
    const bool have_barrier = frontier_.next_key && frontier_.next_key(dt, dseq);
    if (!have_event && !have_barrier) return false;
    if (have_barrier && (!have_event || dt < qt || (dt == qt && dseq < qseq))) {
      now_ = dt;
      ++executed_;
      frontier_.dispatch(dt);
      return true;
    }
    ShardedEventQueue::DueEvent due;
    if (!squeue_->acquire_due(std::numeric_limits<SimTime>::infinity(), due)) {
      return false;
    }
    now_ = due.time;
    ++executed_;
    squeue_->execute_and_release(due);
    return true;
  }
  if (queue_.empty()) return false;
  Event e = queue_.pop();
  now_ = e.time;
  ++executed_;
  e.action();
  return true;
}

PeriodicProcess::PeriodicProcess(Simulator& sim, SimTime period, EventAction tick)
    : sim_(sim), period_(period), tick_(std::move(tick)) {
  if (period_ <= 0.0) {
    throw std::invalid_argument("PeriodicProcess: period must be positive");
  }
  if (!tick_) {
    throw std::invalid_argument("PeriodicProcess: empty tick");
  }
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start(SimTime initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_event_ != kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
}

void PeriodicProcess::arm(SimTime delay) {
  pending_event_ = sim_.schedule_in(delay, [this] { fire(); });
}

void PeriodicProcess::fire() {
  pending_event_ = kInvalidEvent;
  if (!running_) return;
  tick_();
  if (running_) arm(period_);
}

}  // namespace continu::sim
