#include "sim/simulator.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace continu::sim {

EventId Simulator::schedule_in(SimTime delay, EventAction action) {
  if (!action) {
    throw std::invalid_argument("Simulator: empty action");
  }
  if (delay < 0.0) delay = 0.0;
  if (squeue_) return squeue_->push(now_ + delay, std::move(action));
  return queue_.push(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime when, EventAction action) {
  if (!action) {
    throw std::invalid_argument("Simulator: empty action");
  }
  if (when < now_) when = now_;
  if (squeue_) return squeue_->push(when, std::move(action));
  return queue_.push(when, std::move(action));
}

void Simulator::schedule_deferred(std::vector<EventQueue::Deferred>& batch) {
  for (EventQueue::Deferred& deferred : batch) {
    if (deferred.time < now_) deferred.time = now_;
  }
  if (squeue_) {
    squeue_->push_all(batch);
  } else {
    queue_.push_all(batch);
  }
}

std::size_t Simulator::drain_sharded(SimTime horizon) {
  std::size_t ran = 0;
  for (;;) {
    SimTime qt = 0.0;
    std::uint64_t qseq = 0;
    SimTime dt = 0.0;
    std::uint64_t dseq = 0;
    const bool have_event = squeue_->peek(qt, qseq);
    const bool have_barrier = frontier_.next_key && frontier_.next_key(dt, dseq);
    if (!have_event && !have_barrier) break;
    // Global (time, seq) order across both sources. A barrier's key is
    // the sequence of its FIRST pending hand-off — the same rank the
    // single-queue engine's bucket proxy holds, because both are
    // assigned at the first enqueue targeting that instant.
    const bool barrier_first =
        have_barrier &&
        (!have_event || dt < qt || (dt == qt && dseq < qseq));
    if (barrier_first) {
      if (dt > horizon) break;
      now_ = dt;
      ++executed_;
      ++ran;
      frontier_.dispatch(dt);
    } else {
      if (qt > horizon) break;
      ShardedEventQueue::DueEvent due;
      if (!squeue_->acquire_due(horizon, due)) break;
      now_ = due.time;
      ++executed_;
      ++ran;
      squeue_->execute_and_release(due);
    }
  }
  return ran;
}

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t ran = 0;
  if (squeue_) {
    ran = drain_sharded(horizon);
  } else {
    EventQueue::DueEvent due;
    while (queue_.acquire_due(horizon, due)) {
      now_ = due.time;
      ++executed_;
      ++ran;
      queue_.execute_and_release(due);
    }
  }
  if (now_ < horizon) now_ = horizon;
  return ran;
}

std::size_t Simulator::run_all() {
  if (squeue_) {
    return drain_sharded(std::numeric_limits<SimTime>::infinity());
  }
  std::size_t ran = 0;
  EventQueue::DueEvent due;
  while (queue_.acquire_due(std::numeric_limits<SimTime>::infinity(), due)) {
    now_ = due.time;
    ++executed_;
    ++ran;
    queue_.execute_and_release(due);
  }
  return ran;
}

bool Simulator::step() {
  if (squeue_) {
    // One iteration of the sharded drain: the barrier-vs-event pick
    // mirrors drain_sharded so single-stepping preserves global order.
    SimTime qt = 0.0;
    std::uint64_t qseq = 0;
    SimTime dt = 0.0;
    std::uint64_t dseq = 0;
    const bool have_event = squeue_->peek(qt, qseq);
    const bool have_barrier = frontier_.next_key && frontier_.next_key(dt, dseq);
    if (!have_event && !have_barrier) return false;
    if (have_barrier && (!have_event || dt < qt || (dt == qt && dseq < qseq))) {
      now_ = dt;
      ++executed_;
      frontier_.dispatch(dt);
      return true;
    }
    ShardedEventQueue::DueEvent due;
    if (!squeue_->acquire_due(std::numeric_limits<SimTime>::infinity(), due)) {
      return false;
    }
    now_ = due.time;
    ++executed_;
    squeue_->execute_and_release(due);
    return true;
  }
  if (queue_.empty()) return false;
  Event e = queue_.pop();
  now_ = e.time;
  ++executed_;
  e.action();
  return true;
}

PeriodicProcess::PeriodicProcess(Simulator& sim, SimTime period, EventAction tick)
    : sim_(sim), period_(period), tick_(std::move(tick)) {
  if (period_ <= 0.0) {
    throw std::invalid_argument("PeriodicProcess: period must be positive");
  }
  if (!tick_) {
    throw std::invalid_argument("PeriodicProcess: empty tick");
  }
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start(SimTime initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_event_ != kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
}

void PeriodicProcess::arm(SimTime delay) {
  pending_event_ = sim_.schedule_in(delay, [this] { fire(); });
}

void PeriodicProcess::fire() {
  pending_event_ = kInvalidEvent;
  if (!running_) return;
  tick_();
  if (running_) arm(period_);
}

}  // namespace continu::sim
