#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace continu::sim {

EventId Simulator::schedule_in(SimTime delay, std::function<void()> action) {
  if (delay < 0.0) delay = 0.0;
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime when, std::function<void()> action) {
  if (!action) {
    throw std::invalid_argument("Simulator: empty action");
  }
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(action)});
  return id;
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    Event e = queue_.pop();
    now_ = e.time;
    ++executed_;
    ++ran;
    e.action();
  }
  if (now_ < horizon) now_ = horizon;
  return ran;
}

std::size_t Simulator::run_all() {
  std::size_t ran = 0;
  while (!queue_.empty()) {
    Event e = queue_.pop();
    now_ = e.time;
    ++executed_;
    ++ran;
    e.action();
  }
  return ran;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event e = queue_.pop();
  now_ = e.time;
  ++executed_;
  e.action();
  return true;
}

PeriodicProcess::PeriodicProcess(Simulator& sim, SimTime period,
                                 std::function<void()> tick)
    : sim_(sim), period_(period), tick_(std::move(tick)) {
  if (period_ <= 0.0) {
    throw std::invalid_argument("PeriodicProcess: period must be positive");
  }
  if (!tick_) {
    throw std::invalid_argument("PeriodicProcess: empty tick");
  }
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start(SimTime initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_event_ != kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
}

void PeriodicProcess::arm(SimTime delay) {
  pending_event_ = sim_.schedule_in(delay, [this] {
    pending_event_ = kInvalidEvent;
    if (!running_) return;
    tick_();
    if (running_) arm(period_);
  });
}

}  // namespace continu::sim
