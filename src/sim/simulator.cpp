#include "sim/simulator.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace continu::sim {

EventId Simulator::schedule_in(SimTime delay, EventAction action) {
  if (!action) {
    throw std::invalid_argument("Simulator: empty action");
  }
  if (delay < 0.0) delay = 0.0;
  return queue_.push(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime when, EventAction action) {
  if (!action) {
    throw std::invalid_argument("Simulator: empty action");
  }
  if (when < now_) when = now_;
  return queue_.push(when, std::move(action));
}

void Simulator::schedule_deferred(std::vector<EventQueue::Deferred>& batch) {
  for (EventQueue::Deferred& deferred : batch) {
    if (deferred.time < now_) deferred.time = now_;
  }
  queue_.push_all(batch);
}

std::size_t Simulator::run_until(SimTime horizon) {
  std::size_t ran = 0;
  EventQueue::DueEvent due;
  while (queue_.acquire_due(horizon, due)) {
    now_ = due.time;
    ++executed_;
    ++ran;
    queue_.execute_and_release(due);
  }
  if (now_ < horizon) now_ = horizon;
  return ran;
}

std::size_t Simulator::run_all() {
  std::size_t ran = 0;
  EventQueue::DueEvent due;
  while (queue_.acquire_due(std::numeric_limits<SimTime>::infinity(), due)) {
    now_ = due.time;
    ++executed_;
    ++ran;
    queue_.execute_and_release(due);
  }
  return ran;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event e = queue_.pop();
  now_ = e.time;
  ++executed_;
  e.action();
  return true;
}

PeriodicProcess::PeriodicProcess(Simulator& sim, SimTime period, EventAction tick)
    : sim_(sim), period_(period), tick_(std::move(tick)) {
  if (period_ <= 0.0) {
    throw std::invalid_argument("PeriodicProcess: period must be positive");
  }
  if (!tick_) {
    throw std::invalid_argument("PeriodicProcess: empty tick");
  }
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start(SimTime initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_event_ != kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
}

void PeriodicProcess::arm(SimTime delay) {
  pending_event_ = sim_.schedule_in(delay, [this] { fire(); });
}

void PeriodicProcess::fire() {
  pending_event_ = kInvalidEvent;
  if (!running_) return;
  tick_();
  if (running_) arm(period_);
}

}  // namespace continu::sim
