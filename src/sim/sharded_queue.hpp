#pragma once
// ShardedEventQueue — N per-shard slot-pool event heaps coordinated by
// a meta-heap over per-shard frontier keys (the Graphite-style
// partitioned event queue, strict mode).
//
// Every event carries a sequence number drawn from ONE global counter;
// its shard is `seq & (shards - 1)`, so placement is a pure function
// of schedule order (never of thread count) and the shard is
// recoverable from the EventId in O(1) for cancel. The meta-heap
// orders shards by their head (time, seq) key, so the global frontier
// — the next event in (time, FIFO-sequence) order across all shards —
// is one heap-top read. Draining through the frontier therefore
// executes events in EXACTLY the order a single EventQueue would,
// which is what keeps fingerprints byte-identical to the single-queue
// oracle.
//
// Strict mode: the serial frontier walk is the ordering contract and
// the CI oracle; the network's per-lane hand-off heaps
// (net/handoff.hpp, built on the same MetaHeap) pop concurrently
// between frontier instants.
//
// Lax mode (queue_skew_buckets >= 1) relaxes the walk into bounded-skew
// WINDOWS: anchored at the earliest pending (time, seq), every shard
// pops its events due within `anchor + skew` concurrently
// (collect_window — queue-local heap pops only), then the refs execute
// serially in shard-index order at their own local clocks. Collection
// keeps slots registered, so cancels landing mid-window are still
// honoured at execution. Lax order is a pure function of the pending
// set and the window width — deterministic and thread-count invariant
// per skew setting — but it is a DIFFERENT universe from strict
// (docs/DETERMINISM.md contract 7; drift quantified in
// bench/results/pr10_lax_drain/).
//
// The meta-heap is kept EXACT at all times: push, cancel and acquire
// each refresh the touched shard's entry, so acquire_due never meets a
// stale head and cancel-of-a-frontier-event advances the frontier
// immediately.

#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace continu::sim {

/// Tiny binary min-heap over at most `slots` (time, key) entries, one
/// per shard, with a position index for O(log n) in-place update. Key
/// ties cannot happen (keys are globally unique sequences); ordering is
/// (time, key) ascending — identical to EventQueue's heap order.
class MetaHeap {
 public:
  struct Top {
    SimTime time = 0.0;
    std::uint64_t key = 0;
    std::uint32_t slot = 0;
  };

  explicit MetaHeap(std::uint32_t slots) : pos_(slots, kAbsent) {
    heap_.reserve(slots);
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Earliest (time, key) entry. Requires !empty().
  [[nodiscard]] Top top() const noexcept {
    const Entry& e = heap_.front();
    return Top{e.time, e.key, e.slot};
  }

  /// Inserts or repositions `slot`'s entry at (time, key).
  void update(std::uint32_t slot, SimTime time, std::uint64_t key) {
    std::uint32_t i = pos_[slot];
    if (i == kAbsent) {
      i = static_cast<std::uint32_t>(heap_.size());
      heap_.push_back(Entry{time, key, slot});
      pos_[slot] = i;
      sift_up(i);
      return;
    }
    Entry& e = heap_[i];
    if (e.time == time && e.key == key) return;
    const bool earlier = time < e.time || (time == e.time && key < e.key);
    e.time = time;
    e.key = key;
    if (earlier) {
      sift_up(i);
    } else {
      sift_down(i);
    }
  }

  /// Removes `slot`'s entry (the shard went empty). No-op when absent.
  void clear(std::uint32_t slot) {
    const std::uint32_t i = pos_[slot];
    if (i == kAbsent) return;
    pos_[slot] = kAbsent;
    const std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
    if (i != last) {
      heap_[i] = heap_[last];
      pos_[heap_[i].slot] = i;
      heap_.pop_back();
      // The moved entry may need to travel either direction.
      sift_up(i);
      sift_down(i);
    } else {
      heap_.pop_back();
    }
  }

  /// Visits every present entry (arbitrary order): fn(slot, time, key).
  /// Used for frontier-stall accounting — at most one entry per shard,
  /// so a full scan is a handful of iterations.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : heap_) fn(e.slot, e.time, e.key);
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t key;
    std::uint32_t slot;
  };
  static constexpr std::uint32_t kAbsent = 0xFFFFFFFFu;

  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  void sift_up(std::uint32_t i) {
    while (i > 0) {
      const std::uint32_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      swap_entries(i, parent);
      i = parent;
    }
  }

  void sift_down(std::uint32_t i) {
    const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      std::uint32_t best = i;
      const std::uint32_t left = 2 * i + 1;
      const std::uint32_t right = 2 * i + 2;
      if (left < n && before(heap_[left], heap_[best])) best = left;
      if (right < n && before(heap_[right], heap_[best])) best = right;
      if (best == i) return;
      swap_entries(i, best);
      i = best;
    }
  }

  void swap_entries(std::uint32_t a, std::uint32_t b) noexcept {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a].slot] = a;
    pos_[heap_[b].slot] = b;
  }

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;  ///< slot -> heap index, kAbsent if out
};

class ShardedEventQueue {
 public:
  /// Rounds `shards` up to a power of two in [2, kMaxShards] (the shard
  /// of a sequence is `seq & mask`, so the count must be a power of
  /// two; the mask also has to survive the 40-bit sequence field).
  static constexpr unsigned kMaxShards = 64;

  explicit ShardedEventQueue(unsigned shards);
  ShardedEventQueue(const ShardedEventQueue&) = delete;
  ShardedEventQueue& operator=(const ShardedEventQueue&) = delete;

  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// Draws one sequence number from the global stream WITHOUT
  /// scheduling. The network's delivery hand-off lanes pull from here
  /// so a delivery's tie-break rank against ordinary events is
  /// assigned at the same chronological point as in the single-queue
  /// engine (where the bucket proxy event consumed it).
  [[nodiscard]] std::uint64_t allocate_seq() noexcept { return next_seq_++; }

  template <typename F>
  EventId emplace(SimTime time, F&& f) {
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t shard = shard_of_seq(seq);
    const EventId id = shards_[shard].emplace_with_seq(seq, time, std::forward<F>(f));
    note_push(shard);
    return id;
  }

  EventId push(SimTime time, EventAction action);

  /// Pushes every deferred emission in order and clears the batch —
  /// same contract as EventQueue::push_all, with sequences drawn from
  /// the shared global stream.
  void push_all(std::vector<EventQueue::Deferred>& batch);

  /// EventQueue::DueEvent plus the shard the event came from.
  struct DueEvent {
    SimTime time = 0.0;
    std::uint32_t slot_index = 0;
    std::uint32_t shard = 0;
  };

  /// Acquires the global-frontier event (earliest (time, seq) across
  /// all shards) iff its time <= horizon. Pair with exactly one
  /// execute_and_release, like EventQueue.
  bool acquire_due(SimTime horizon, DueEvent& out);
  void execute_and_release(const DueEvent& due);

  bool cancel(EventId id) noexcept;

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] std::size_t peak_size() const noexcept { return peak_live_; }

  /// Frontier (time, seq) without removal; false when empty.
  bool peek(SimTime& time, std::uint64_t& seq) const;

  // --- frontier accounting (deterministic, mirrors into obs) -------------
  /// Times the global frontier moved to a strictly later instant.
  [[nodiscard]] std::uint64_t frontier_advances() const noexcept {
    return frontier_advances_;
  }
  /// Cumulative shards with NO event at the frontier instant, sampled
  /// at each advance — the strict-mode imbalance signal (stalled
  /// shards would idle in a lax parallel drain).
  [[nodiscard]] std::uint64_t frontier_stalled_shards() const noexcept {
    return frontier_stalled_shards_;
  }

  // --- lax mode (bounded-skew windows) ------------------------------------
  /// Sizes the lax accounting: the per-shard lead histogram carries
  /// `skew_buckets + 1` buckets (lead 0..skew grid steps past the
  /// window anchor). Call once before the first window.
  void configure_lax(unsigned skew_buckets);

  /// Phase A (forkable, one worker per shard): pops shard `shard`'s
  /// events due at or before `limit` into its private window list.
  /// Queue-local heap/slot state only — workers must not touch meta_,
  /// live_ or any counter; finish_window() settles those serially.
  void collect_window(std::uint32_t shard, SimTime limit);

  /// Serial post-fork settlement: refreshes every shard's meta entry
  /// and accounts the window (skew-stalled shards, per-shard lead
  /// histogram of collected events vs `anchor` on `grid_s` buckets).
  void finish_window(SimTime anchor, SimTime grid_s);

  /// Phase B (serial): executes the collected refs in shard-index
  /// order, skipping refs cancelled since collection. `on_event(time)`
  /// runs before each execution so the simulator can stamp its clock
  /// and executed count. Returns events actually run.
  template <typename Fn>
  std::size_t execute_window(Fn&& on_event) {
    std::size_t ran = 0;
    for (std::uint32_t s = 0; s < shard_count(); ++s) {
      for (const EventQueue::WindowRef& ref : window_[s]) {
        if (!shards_[s].collected_live(ref)) continue;
        on_event(ref.time);
        shards_[s].execute_collected(ref);
        --live_;
        ++ran;
      }
      window_[s].clear();
    }
    lax_events_drained_ += ran;
    return ran;
  }

  /// Lax windows drained.
  [[nodiscard]] std::uint64_t lax_windows() const noexcept { return lax_windows_; }
  /// Events executed through lax windows.
  [[nodiscard]] std::uint64_t lax_events_drained() const noexcept {
    return lax_events_drained_;
  }
  /// Cumulative shards that held NO event inside a window — the lax
  /// counterpart of frontier_stalled_shards (skew-stall: the window
  /// could not feed that shard any work).
  [[nodiscard]] std::uint64_t lax_stalled_shards() const noexcept {
    return lax_stalled_shards_;
  }
  /// Per-lead histogram: bucket b counts collected events whose time
  /// sat b grid steps past their window's anchor. Empty until
  /// configure_lax. A mass concentrated at bucket 0 means the skew
  /// window is not being used; mass in the tail is recovered
  /// parallelism.
  [[nodiscard]] const std::vector<std::uint64_t>& lax_lead_histogram()
      const noexcept {
    return lax_lead_hist_;
  }

 private:
  [[nodiscard]] std::uint32_t shard_of_seq(std::uint64_t seq) const noexcept {
    return static_cast<std::uint32_t>(seq) & shard_mask_;
  }
  [[nodiscard]] std::uint32_t shard_of_id(EventId id) const noexcept {
    return shard_of_seq(id >> EventQueue::kSlotBits);
  }

  void note_push(std::uint32_t shard);
  /// Re-derives `shard`'s meta entry from its queue head (or clears it).
  void refresh_meta(std::uint32_t shard);
  void note_frontier(SimTime time);

  std::vector<EventQueue> shards_;
  std::uint32_t shard_mask_ = 0;
  MetaHeap meta_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;

  SimTime frontier_time_ = -std::numeric_limits<SimTime>::infinity();
  std::uint64_t frontier_advances_ = 0;
  std::uint64_t frontier_stalled_shards_ = 0;

  // --- lax mode -----------------------------------------------------------
  /// Per-shard collected-ref scratch; written only by the owning
  /// worker during a window fork, consumed serially by execute_window.
  std::vector<std::vector<EventQueue::WindowRef>> window_;
  std::uint64_t lax_windows_ = 0;
  std::uint64_t lax_events_drained_ = 0;
  std::uint64_t lax_stalled_shards_ = 0;
  std::vector<std::uint64_t> lax_lead_hist_;
};

}  // namespace continu::sim
