#pragma once
// RoundScheduler — batched periodic scheduling for fleets of
// same-period ticks (per-node scheduling rounds, playback, metric
// sampling, churn).
//
// One PeriodicProcess per node means N standing events in the
// simulator queue plus a heap-allocated closure per node; at 8000+
// nodes those dominate queue depth. A RoundScheduler keeps at most ONE
// pending simulator event no matter how many participants it drives:
// participants live in a flat slot vector, their next-fire times in a
// private (time, seq) min-heap, and the single armed proxy event fires
// the whole batch of ticks due at that instant, then re-arms at the
// new minimum.
//
// Determinism contract (the engine acceptance bar): each participant
// ticks at exactly initial_time, initial_time + period,
// initial_time + 2*period, ... with the SAME floating-point arithmetic
// a self-rescheduling PeriodicProcess would produce (next = fired +
// period), and equal-time ticks fire in add() order. Sessions driven
// through a RoundScheduler are bit-identical to the per-node-process
// fleet they replaced.
//
// Join/leave is O(1): add() takes a free slot (or appends), remove()
// bumps the slot's generation and frees it — stale heap entries and
// stale handles fail the generation compare and are skipped lazily.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"

namespace continu::sim {

class RoundScheduler {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Stale-safe participant reference: generation mismatch makes a
  /// handle to a removed (and possibly reused) slot a strict no-op.
  struct Handle {
    std::uint32_t slot = kNoSlot;
    std::uint32_t generation = 0;
  };

  /// `tick` is invoked as tick(user) for every due participant, where
  /// `user` is the value given to add(). One callback for the whole
  /// fleet — per-participant state stays with the caller.
  RoundScheduler(Simulator& sim, SimTime period,
                 std::function<void(std::size_t user)> tick);

  /// Batch dispatch: with a batch callback installed, every fire
  /// reports ALL ticks due at the instant in ONE call — the users in
  /// add() order — instead of one tick() call each. This is the shard
  /// boundary for intra-session parallelism: the callee may fan the
  /// batch out across a ParallelExecutor, provided it merges results
  /// deterministically.
  ///
  /// Semantics differences from per-tick mode, both deterministic:
  ///  * a participant removed by an EARLIER tick of the same batch
  ///    still appears in the batch (the callee must check liveness);
  ///    rescheduling honors the removal as usual;
  ///  * a participant add()ed during the batch with zero initial delay
  ///    fires via an immediate proxy re-arm rather than inside the
  ///    current batch.
  using BatchTick = std::function<void(const std::vector<std::size_t>& users)>;
  void set_batch_tick(BatchTick batch) { batch_tick_ = std::move(batch); }
  /// Cancels the armed proxy event: a scheduler may die before its
  /// simulator without leaving a dangling [this] action behind.
  ~RoundScheduler();
  RoundScheduler(const RoundScheduler&) = delete;
  RoundScheduler& operator=(const RoundScheduler&) = delete;

  /// Registers a participant whose first tick runs at
  /// now() + initial_delay (clamped to >= 0), then every period.
  Handle add(SimTime initial_delay, std::size_t user);

  /// Registers a participant whose first tick runs at the ABSOLUTE
  /// time `first_tick` (clamped to >= now()), then every period. Lets
  /// a late joiner land on an existing cohort's recurring tick instant
  /// BIT-exactly (now() + delay round-trips through subtraction and
  /// would not), so it merges into that cohort's batch instead of
  /// fragmenting batches into singletons.
  Handle add_at(SimTime first_tick, std::size_t user);

  /// Unregisters a participant in O(1); its pending tick will not run.
  /// Returns true iff the handle was live.
  bool remove(Handle handle) noexcept;

  /// True when the handle refers to a live participant.
  [[nodiscard]] bool contains(Handle handle) const noexcept;

  /// Live participants.
  [[nodiscard]] std::size_t active() const noexcept { return active_; }

  [[nodiscard]] SimTime period() const noexcept { return period_; }

 private:
  struct Participant {
    std::size_t user = 0;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    bool alive = false;
  };

  struct Entry {
    SimTime time;
    std::uint64_t seq;  ///< add() order; deterministic equal-time tie-break
    std::uint32_t slot;
    std::uint32_t generation;
  };

  /// Max-heap comparator for std::push_heap/std::pop_heap: "later
  /// fires last" makes the std heap a min-heap on (time, seq).
  struct LaterEntry {
    [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool entry_live(const Entry& e) const noexcept {
    const Participant& p = parts_[e.slot];
    return p.alive && p.generation == e.generation;
  }

  void fire();
  void rearm();
  void push_entry(Entry entry);
  [[nodiscard]] Entry pop_entry();
  void drop_dead();

  Simulator& sim_;
  SimTime period_;
  std::function<void(std::size_t)> tick_;
  BatchTick batch_tick_;
  std::vector<Participant> parts_;
  std::vector<Entry> heap_;
  /// Scratch for batch mode, reused across fires (no per-fire allocs).
  std::vector<Entry> due_entries_;
  std::vector<std::size_t> due_users_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t active_ = 0;
  EventId armed_ = kInvalidEvent;
  SimTime armed_time_ = 0.0;
};

}  // namespace continu::sim
